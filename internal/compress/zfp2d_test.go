package compress

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smoothGrid(nx, ny int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	kx, ky := 1+rng.Float64()*6, 1+rng.Float64()*6
	out := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x := float64(i) / float64(nx)
			y := float64(j) / float64(ny)
			out[j*nx+i] = math.Sin(kx*2*math.Pi*x)*math.Cos(ky*2*math.Pi*y) + 0.3*x
		}
	}
	return out
}

func TestZFP2DErrorBound(t *testing.T) {
	for _, tol := range []float64{1e-2, 1e-4, 1e-8} {
		z, err := NewZFP2D(tol)
		if err != nil {
			t.Fatal(err)
		}
		for _, dims := range [][2]int{{16, 16}, {17, 13}, {4, 4}, {1, 1}, {5, 1}, {1, 7}, {64, 48}} {
			nx, ny := dims[0], dims[1]
			in := smoothGrid(nx, ny, int64(nx*100+ny))
			enc, err := z.Encode(in, nx, ny)
			if err != nil {
				t.Fatalf("%dx%d: %v", nx, ny, err)
			}
			got, gx, gy, err := z.Decode(enc)
			if err != nil {
				t.Fatalf("%dx%d: %v", nx, ny, err)
			}
			if gx != nx || gy != ny {
				t.Fatalf("dims %dx%d, want %dx%d", gx, gy, nx, ny)
			}
			for i := range in {
				if e := math.Abs(got[i] - in[i]); e > tol {
					t.Fatalf("%dx%d tol=%g: error %g at %d", nx, ny, tol, e, i)
				}
			}
		}
	}
}

func TestZFP2DZeroGrid(t *testing.T) {
	z, _ := NewZFP2D(1e-6)
	in := make([]float64, 8*8)
	enc, err := z.Encode(in, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero blocks cost one bit each; the stream must be tiny.
	if len(enc) > 40 {
		t.Fatalf("zero grid encoded to %d bytes", len(enc))
	}
	got, _, _, err := z.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero grid decoded nonzero at %d", i)
		}
	}
}

func TestZFP2DRejectsBadInput(t *testing.T) {
	z, _ := NewZFP2D(1e-6)
	if _, err := z.Encode(make([]float64, 5), 2, 2); err == nil {
		t.Error("accepted mismatched dims")
	}
	if _, err := z.Encode([]float64{math.NaN()}, 1, 1); err == nil {
		t.Error("accepted NaN")
	}
	if _, err := NewZFP2D(-1); err == nil {
		t.Error("accepted negative tolerance")
	}
	if _, _, _, err := z.Decode(nil); err == nil {
		t.Error("decoded nil")
	}
	if _, _, _, err := z.Decode([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("decoded junk")
	}
	enc, _ := z.Encode(smoothGrid(8, 8, 1), 8, 8)
	if _, _, _, err := z.Decode(enc[:len(enc)-3]); err == nil {
		t.Error("decoded truncated stream")
	}
}

func TestZFP2DBeats1DOnGrids(t *testing.T) {
	// The reason 2D blocks exist: correlation along both axes. On the
	// same grid, at the same tolerance, 2D must encode smaller than the
	// linearized 1D codec.
	const nx, ny = 128, 128
	in := smoothGrid(nx, ny, 7)
	tol := 1e-6
	z2, _ := NewZFP2D(tol)
	z1, _ := NewZFP(tol)
	enc2, err := z2.Encode(in, nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := z1.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc2) >= len(enc1) {
		t.Fatalf("2D %d bytes >= 1D %d bytes on a smooth grid", len(enc2), len(enc1))
	}
}

func TestZFP2DCompressionImprovesWithTolerance(t *testing.T) {
	in := smoothGrid(64, 64, 9)
	prev := 1 << 30
	for _, tol := range []float64{1e-12, 1e-8, 1e-4, 1e-2} {
		z, err := NewZFP2D(tol)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := z.Encode(in, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > prev {
			t.Fatalf("tol %g encoded %d > tighter %d", tol, len(enc), prev)
		}
		prev = len(enc)
	}
}

func TestZFP2DNearLosslessAtZero(t *testing.T) {
	z, err := NewZFP2D(0)
	if err != nil {
		t.Fatal(err)
	}
	in := smoothGrid(20, 20, 11)
	enc, err := z.Encode(in, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := z.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	var amax float64
	for _, v := range in {
		amax = math.Max(amax, math.Abs(v))
	}
	for i := range in {
		if math.Abs(got[i]-in[i]) > amax*math.Ldexp(1, -47) {
			t.Fatalf("zero-tolerance error too large at %d", i)
		}
	}
}

func TestHadamard4RoundTrip(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		v := []int64{int64(a), int64(b), int64(c), int64(d)}
		orig := append([]int64(nil), v...)
		hadamard4(v)
		invHadamard4(v)
		for i := range v {
			if v[i] != 4*orig[i] { // H*H = 4I
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZigzag16IsPermutation(t *testing.T) {
	seen := [16]bool{}
	for _, v := range zigzag16 {
		if v < 0 || v > 15 || seen[v] {
			t.Fatalf("zigzag16 not a permutation: %v", zigzag16)
		}
		seen[v] = true
	}
}

// TestQuickZFP2DBound is the property test for the 2D error bound.
func TestQuickZFP2DBound(t *testing.T) {
	f := func(seed int64, tolExp uint8, dimSel uint8) bool {
		tol := math.Ldexp(1, -int(tolExp%28)-1)
		dims := [][2]int{{8, 8}, {13, 9}, {4, 20}, {31, 2}}[int(dimSel)%4]
		nx, ny := dims[0], dims[1]
		rng := rand.New(rand.NewSource(seed))
		in := make([]float64, nx*ny)
		scale := math.Ldexp(1, rng.Intn(30)-15)
		for i := range in {
			in[i] = rng.NormFloat64() * scale
		}
		z, err := NewZFP2D(tol)
		if err != nil {
			return false
		}
		enc, err := z.Encode(in, nx, ny)
		if err != nil {
			return false
		}
		got, gx, gy, err := z.Decode(enc)
		if err != nil || gx != nx || gy != ny {
			return false
		}
		for i := range in {
			if math.Abs(got[i]-in[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZFP2DEncode(b *testing.B) {
	in := smoothGrid(256, 256, 21)
	z, _ := NewZFP2D(1e-6)
	b.SetBytes(int64(8 * len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Encode(in, 256, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZFP2DDecode measures the batch 2D decoder (zfp_batch.go) at the
// tolerances the pipeline actually uses; MB/s counts decoded output floats.
func BenchmarkZFP2DDecode(b *testing.B) {
	in := smoothGrid(256, 256, 21)
	for _, tol := range []float64{1e-3, 1e-6} {
		z, err := NewZFP2D(tol)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := z.Encode(in, 256, 256)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tol=%g", tol), func(b *testing.B) {
			dst := make([]float64, len(in))
			b.SetBytes(int64(8 * len(in)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := z.DecodeInto(dst, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
