package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// bitWriter packs bits LSB-first into a byte slice. The zfp-like codec's
// embedded bit-plane coder emits streams of single bits and short bit
// groups; packing them densely is where most of its compression ratio over
// raw storage comes from.
type bitWriter struct {
	buf  []byte
	cur  uint64 // pending bits, low nbits valid
	nbit uint
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur |= (b & 1) << w.nbit
	w.nbit++
	if w.nbit == 64 {
		w.flushWord()
	}
}

// writeBits emits the low n bits of v, LSB first. n must be <= 64.
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	free := 64 - w.nbit
	if n < free {
		w.cur |= v << w.nbit
		w.nbit += n
		return
	}
	w.cur |= v << w.nbit
	w.flushWord()
	if n > free {
		w.cur = v >> free
		w.nbit = n - free
	}
}

func (w *bitWriter) flushWord() {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.cur)
	w.cur = 0
	w.nbit = 0
}

// bitWriterPool recycles encode-side writers: the zfp/zfp2d encoders burn
// one writer (and its grown buffer) per chunk, which dominated the chunked
// encode path's allocation count. reset reclaims the retained buffer; the
// encoder copies the finished stream out before Put, so pooled buffers never
// alias returned payloads.
var bitWriterPool = sync.Pool{
	New: func() any {
		return &bitWriter{buf: make([]byte, 0, 32<<10)}
	},
}

func getBitWriter() *bitWriter {
	w := bitWriterPool.Get().(*bitWriter)
	w.buf = w.buf[:0]
	w.cur = 0
	w.nbit = 0
	return w
}

func putBitWriter(w *bitWriter) { bitWriterPool.Put(w) }

// finish seals the stream and returns an exactly-sized copy safe to retain
// after the writer goes back to the pool.
func (w *bitWriter) finish() []byte {
	enc := w.bytes()
	out := make([]byte, len(enc))
	copy(out, enc)
	return out
}

// bytes finalizes the stream, padding the last partial byte with zeros.
func (w *bitWriter) bytes() []byte {
	for w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur >>= 8
		if w.nbit >= 8 {
			w.nbit -= 8
		} else {
			w.nbit = 0
		}
	}
	return w.buf
}

// errBitUnderflow is the sentinel for truncated bit streams. Call sites
// receive it wrapped with the reader's bit offset (underflowErr), so a
// corrupt container names the exact position that ran dry; errors.Is against
// this sentinel still matches.
var errBitUnderflow = errors.New("compress: bit stream underflow")

// bitReader mirrors bitWriter.
type bitReader struct {
	buf []byte
	pos int // next byte
	cur uint64
	n   uint // valid bits in cur
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

// bitOffset reports how many bits have been consumed so far — the position a
// truncation error points at.
func (r *bitReader) bitOffset() int64 {
	return int64(r.pos)*8 - int64(r.n)
}

// underflowErr builds the offset-carrying truncation error. It is only on
// the error path, so the allocation never taxes a healthy decode.
func (r *bitReader) underflowErr() error {
	return fmt.Errorf("%w at bit %d of %d-byte stream", errBitUnderflow, r.bitOffset(), len(r.buf))
}

func (r *bitReader) fill() {
	for r.n <= 56 && r.pos < len(r.buf) {
		r.cur |= uint64(r.buf[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
}

// refillWord tops cur up from the stream a whole 64-bit word at a time,
// leaving at least 57 buffered bits whenever the stream still has them. It
// is the batch decoder's refill: one unaligned load and two shifts replace
// up to seven byte-sized iterations of fill. Bits of the loaded word beyond
// cur's free space are discarded and re-read by the next refill (pos only
// advances over fully-accepted bytes), so the consumed stream is identical
// to fill's. Falls back to fill near the end of the buffer.
func (r *bitReader) refillWord() {
	if r.pos+8 <= len(r.buf) && r.n <= 56 {
		w := binary.LittleEndian.Uint64(r.buf[r.pos:])
		r.cur |= w << r.n
		k := (63 - r.n) >> 3
		r.pos += int(k)
		r.n += k * 8
		return
	}
	r.fill()
}

// take consumes k buffered bits without bounds checks. Callers must
// guarantee k <= r.n (and hence k <= 63).
func (r *bitReader) take(k uint) uint64 {
	v := r.cur & (1<<k - 1)
	r.cur >>= k
	r.n -= k
	return v
}

func (r *bitReader) readBit() (uint64, error) {
	if r.n == 0 {
		r.fill()
		if r.n == 0 {
			return 0, r.underflowErr()
		}
	}
	b := r.cur & 1
	r.cur >>= 1
	r.n--
	return b, nil
}

// readBits reads n (<= 64) bits, LSB first.
func (r *bitReader) readBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	var v uint64
	var got uint
	for got < n {
		if r.n == 0 {
			r.fill()
			if r.n == 0 {
				return 0, r.underflowErr()
			}
		}
		take := n - got
		if take > r.n {
			take = r.n
		}
		chunk := r.cur
		if take < 64 {
			chunk &= (1 << take) - 1
		}
		v |= chunk << got
		r.cur >>= take
		r.n -= take
		got += take
	}
	return v, nil
}
