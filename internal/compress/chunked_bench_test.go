package compress

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/engine"
)

// Chunked-container benchmarks: encode and decode of one large product
// through the v2 frame, per codec and worker count. scripts/bench.sh
// harvests these into BENCH_codec.json. On a single-core box the worker
// sweep shows the (small) framing overhead; the speedup column only
// separates on multi-core hardware, while allocs/op — the other half of
// the intra-product optimization — is hardware-independent.

const benchValues = 1 << 18 // 256 Ki float64, 2 MiB raw

func benchCodecs(b *testing.B) []Codec {
	b.Helper()
	z, err := NewZFP(1e-6)
	if err != nil {
		b.Fatal(err)
	}
	return []Codec{z, NewFPC(16), Raw{}}
}

func BenchmarkChunkedEncode(b *testing.B) {
	ctx := context.Background()
	vals := smoothSignal(benchValues, 42)
	for _, c := range benchCodecs(b) {
		for _, workers := range []int{1, 4} {
			pool := engine.NewPool(workers)
			b.Run(fmt.Sprintf("codec=%s/workers=%d", c.Name(), workers), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(8 * benchValues)
				for i := 0; i < b.N; i++ {
					if _, err := ChunkedEncode(ctx, pool, c, vals, DefaultChunkSize); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkChunkedDecode(b *testing.B) {
	ctx := context.Background()
	vals := smoothSignal(benchValues, 42)
	for _, c := range benchCodecs(b) {
		frame, err := ChunkedEncode(ctx, nil, c, vals, DefaultChunkSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			pool := engine.NewPool(workers)
			b.Run(fmt.Sprintf("codec=%s/workers=%d", c.Name(), workers), func(b *testing.B) {
				dst := make([]float64, benchValues)
				b.ReportAllocs()
				b.SetBytes(8 * benchValues)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ChunkedDecodeInto(ctx, pool, c, dst, frame); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkV1Decode is the unframed baseline the chunked decode competes
// against: same codec, same values, one serial bitstream.
func BenchmarkV1Decode(b *testing.B) {
	vals := smoothSignal(benchValues, 42)
	for _, c := range benchCodecs(b) {
		enc, err := c.Encode(vals)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("codec="+c.Name(), func(b *testing.B) {
			dst := make([]float64, benchValues)
			b.ReportAllocs()
			b.SetBytes(8 * benchValues)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.DecodeInto(dst, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
