package compress

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTileCacheHitMiss(t *testing.T) {
	c := NewTileCache(1 << 20)
	decodes := 0
	decode := func() ([]float64, error) {
		decodes++
		return []float64{1, 2, 3, 4}, nil
	}
	vals, hit, err := c.GetOrDecode("k", 0, 5, decode)
	if err != nil || hit || len(vals) != 4 {
		t.Fatalf("first get: vals=%v hit=%v err=%v", vals, hit, err)
	}
	vals, hit, err = c.GetOrDecode("k", 0, 5, decode)
	if err != nil || !hit || len(vals) != 4 {
		t.Fatalf("second get: vals=%v hit=%v err=%v", vals, hit, err)
	}
	if decodes != 1 {
		t.Fatalf("decode ran %d times, want 1", decodes)
	}
	// Distinct tile coordinates are distinct entries.
	if _, hit, _ := c.GetOrDecode("k", 1, 5, decode); hit {
		t.Fatal("different level must miss")
	}
	if _, hit, _ := c.GetOrDecode("k", 0, BaseTile, decode); hit {
		t.Fatal("base tile must miss")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats hits=%d misses=%d, want 1/3", hits, misses)
	}
	if got := c.SizeBytes(); got != 3*4*8 {
		t.Fatalf("SizeBytes=%d, want %d", got, 3*4*8)
	}
}

func TestTileCacheDecodeError(t *testing.T) {
	c := NewTileCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	// The failure is not cached: a later decode succeeds and fills.
	vals, hit, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) { return []float64{7}, nil })
	if err != nil || hit || len(vals) != 1 {
		t.Fatalf("retry: vals=%v hit=%v err=%v", vals, hit, err)
	}
}

func TestTileCacheEviction(t *testing.T) {
	c := NewTileCache(3 * 4 * 8) // room for three 4-value tiles
	decode := func() ([]float64, error) { return []float64{1, 2, 3, 4}, nil }
	for ci := 0; ci < 4; ci++ {
		if _, _, err := c.GetOrDecode("k", 0, ci, decode); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.SizeBytes(); got > 3*4*8 {
		t.Fatalf("SizeBytes=%d over budget %d", got, 3*4*8)
	}
	// Tile 0 was least recently used and must be gone; tile 3 must remain.
	if _, hit, _ := c.GetOrDecode("k", 0, 0, decode); hit {
		t.Fatal("tile 0 should have been evicted")
	}
	if _, hit, _ := c.GetOrDecode("k", 0, 3, decode); !hit {
		t.Fatal("tile 3 should still be cached")
	}
}

func TestTileCacheInvalidate(t *testing.T) {
	c := NewTileCache(1 << 20)
	decode := func() ([]float64, error) { return []float64{1}, nil }
	c.GetOrDecode("a", 0, 0, decode)
	c.GetOrDecode("b", 0, 0, decode)
	c.Invalidate("a")
	if _, hit, _ := c.GetOrDecode("a", 0, 0, decode); hit {
		t.Fatal("invalidated key must miss")
	}
	if _, hit, _ := c.GetOrDecode("b", 0, 0, decode); !hit {
		t.Fatal("unrelated key must stay cached")
	}
}

// TestTileCacheHitAllocs pins the hot path: a cache hit must not allocate —
// the point of the cache is to make repeated analytics free, and an
// allocation per tile lookup would show up at fleet scale.
func TestTileCacheHitAllocs(t *testing.T) {
	c := NewTileCache(1 << 20)
	if _, _, err := c.GetOrDecode("k", 2, 9, func() ([]float64, error) { return []float64{1, 2}, nil }); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, hit, err := c.GetOrDecode("k", 2, 9, func() ([]float64, error) {
			t.Error("decode must not run on a hit")
			return nil, nil
		})
		if err != nil || !hit {
			t.Fatalf("hit=%v err=%v", hit, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hit path allocates %v times per op, want 0", allocs)
	}
}

// TestTileCacheSingleFlight runs many goroutines at the same cold tile and
// checks exactly one decode happens; run under -race this also exercises the
// lock discipline around the flight group and LRU.
func TestTileCacheSingleFlight(t *testing.T) {
	c := NewTileCache(1 << 20)
	var decodes atomic.Int64
	gate := make(chan struct{})
	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			vals, _, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) {
				decodes.Add(1)
				return []float64{42}, nil
			})
			if err != nil || len(vals) != 1 || vals[0] != 42 {
				t.Errorf("vals=%v err=%v", vals, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := decodes.Load(); n != 1 {
		t.Fatalf("%d decodes for one tile, want 1 (single-flight)", n)
	}
}

// TestTileCacheInvalidateMidFlight invalidates the key while a decode is in
// flight: the fill lands under the dead generation and a reader arriving
// after the invalidation must decode fresh, never seeing the stale values.
func TestTileCacheInvalidateMidFlight(t *testing.T) {
	c := NewTileCache(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		vals, _, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) {
			close(started)
			<-release
			return []float64{1}, nil // stale by the time it lands
		})
		// The in-flight reader still gets its own (now stale) decode result.
		if err != nil || vals[0] != 1 {
			panic(fmt.Sprintf("in-flight reader: vals=%v err=%v", vals, err))
		}
	}()
	<-started
	c.Invalidate("k") // writer overwrites while the decode runs
	close(release)
	<-done
	// A post-invalidation reader must not see the dead-generation fill.
	vals, hit, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) {
		return []float64{2}, nil
	})
	if err != nil || hit || vals[0] != 2 {
		t.Fatalf("post-invalidate read: vals=%v hit=%v err=%v", vals, hit, err)
	}
}

// TestTileCacheConcurrentInvalidate hammers reads against invalidations; the
// invariant under -race is simply no data race and no stale generation served.
func TestTileCacheConcurrentInvalidate(t *testing.T) {
	c := NewTileCache(1 << 20)
	var gen atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			gen.Add(1)
			c.Invalidate("k")
		}
		close(stop)
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := gen.Load()
				vals, _, err := c.GetOrDecode("k", 0, 0, func() ([]float64, error) {
					return []float64{float64(g)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Served values may lag the writer but never precede the
				// generation observed before our own decode was installed.
				if len(vals) != 1 {
					t.Errorf("vals=%v", vals)
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
}
