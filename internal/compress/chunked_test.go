package compress

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/engine"
)

// allCodecs returns every codec the chunked container must wrap. Lossy
// codecs are included: chunking must commute with their per-chunk streams
// bit-exactly, even though the values themselves are approximate.
func allCodecs(t *testing.T) []Codec {
	t.Helper()
	return append(lossyCodecs(t, 1e-6), losslessCodecs()...)
}

// v1ChunkwiseDecode is the reference semantics of a v2 frame: encode each
// chunk independently with the plain codec, decode it back, concatenate.
// ChunkedDecode of a ChunkedEncode frame must match it bit-exactly.
func v1ChunkwiseDecode(t *testing.T, c Codec, vals []float64, chunkSize int) []float64 {
	t.Helper()
	out := make([]float64, 0, len(vals))
	for lo := 0; lo < len(vals); lo += chunkSize {
		hi := lo + chunkSize
		if hi > len(vals) {
			hi = len(vals)
		}
		enc, err := c.Encode(vals[lo:hi])
		if err != nil {
			t.Fatalf("%s: v1 encode chunk at %d: %v", c.Name(), lo, err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s: v1 decode chunk at %d: %v", c.Name(), lo, err)
		}
		out = append(out, dec...)
	}
	return out
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestChunkedRoundTrip(t *testing.T) {
	ctx := context.Background()
	sizes := []int{1, 7, 64, 1000, 4096}
	counts := []int{0, 1, 63, 64, 65, 1000, 5000}
	for _, c := range allCodecs(t) {
		for _, cs := range sizes {
			for _, n := range counts {
				vals := smoothSignal(n, int64(n+cs))
				frame, err := ChunkedEncode(ctx, nil, c, vals, cs)
				if err != nil {
					t.Fatalf("%s cs=%d n=%d: encode: %v", c.Name(), cs, n, err)
				}
				got, err := ChunkedDecode(ctx, nil, c, frame)
				if err != nil {
					t.Fatalf("%s cs=%d n=%d: decode: %v", c.Name(), cs, n, err)
				}
				want := v1ChunkwiseDecode(t, c, vals, cs)
				if !bitEqual(got, want) {
					t.Fatalf("%s cs=%d n=%d: framed decode differs from chunk-wise v1 decode", c.Name(), cs, n)
				}
				if n <= cs {
					if IsChunkedFrame(frame) && n > 0 {
						t.Fatalf("%s cs=%d n=%d: single-chunk input was framed", c.Name(), cs, n)
					}
				} else if !IsChunkedFrame(frame) {
					t.Fatalf("%s cs=%d n=%d: multi-chunk input was not framed", c.Name(), cs, n)
				}
			}
		}
	}
}

// TestChunkedWorkerInvariance pins the determinism contract: stored frames
// are byte-identical and decoded values bit-identical at every worker count.
func TestChunkedWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	vals := smoothSignal(50000, 7)
	pools := []*engine.Pool{nil, engine.NewPool(1), engine.NewPool(3), engine.NewPool(8)}
	for _, c := range allCodecs(t) {
		var refFrame []byte
		var refVals []float64
		for pi, pool := range pools {
			// A typed-nil *engine.Pool must behave like a nil Runner.
			var r Runner
			if pool != nil {
				r = pool
			}
			frame, err := ChunkedEncode(ctx, r, c, vals, 1024)
			if err != nil {
				t.Fatalf("%s pool %d: encode: %v", c.Name(), pi, err)
			}
			dec, err := ChunkedDecode(ctx, r, c, frame)
			if err != nil {
				t.Fatalf("%s pool %d: decode: %v", c.Name(), pi, err)
			}
			if pi == 0 {
				refFrame, refVals = frame, dec
				continue
			}
			if !bytes.Equal(frame, refFrame) {
				t.Fatalf("%s pool %d: frame bytes differ from serial encode", c.Name(), pi)
			}
			if !bitEqual(dec, refVals) {
				t.Fatalf("%s pool %d: decoded values differ from serial decode", c.Name(), pi)
			}
		}
	}
}

// TestChunkedTypedNilPool verifies the documented claim that a typed-nil
// *engine.Pool satisfies Runner and runs serially.
func TestChunkedTypedNilPool(t *testing.T) {
	ctx := context.Background()
	var pool *engine.Pool
	vals := smoothSignal(9000, 3)
	frame, err := ChunkedEncode(ctx, pool, Raw{}, vals, 2048)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ChunkedDecode(ctx, pool, Raw{}, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(got, vals) {
		t.Fatal("typed-nil pool round trip mismatch")
	}
}

// TestChunkedV1Fallback: plain v1 payloads must decode through ChunkedDecode
// bit-exactly as through the codec itself — old containers keep working.
func TestChunkedV1Fallback(t *testing.T) {
	ctx := context.Background()
	vals := smoothSignal(3000, 11)
	for _, c := range allCodecs(t) {
		enc, err := c.Encode(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		want, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := ChunkedDecode(ctx, nil, c, enc)
		if err != nil {
			t.Fatalf("%s: ChunkedDecode of v1 payload: %v", c.Name(), err)
		}
		if !bitEqual(got, want) {
			t.Fatalf("%s: v1 fallback decode differs from codec decode", c.Name())
		}
	}
}

func TestChunkedDecodeIntoReuse(t *testing.T) {
	ctx := context.Background()
	vals := smoothSignal(20000, 5)
	frame, err := ChunkedEncode(ctx, nil, Raw{}, vals, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 0, len(vals))
	got, err := ChunkedDecodeInto(ctx, nil, Raw{}, dst, frame)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("DecodeInto did not reuse the provided backing array")
	}
	if !bitEqual(got, vals) {
		t.Fatal("round trip mismatch")
	}
}

// TestChunkedCorruptFrames: malformed v2 frames must be rejected with an
// error, never a panic or silent misread.
func TestChunkedCorruptFrames(t *testing.T) {
	ctx := context.Background()
	vals := smoothSignal(10000, 9)
	frame, err := ChunkedEncode(ctx, nil, Raw{}, vals, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !IsChunkedFrame(frame) {
		t.Fatal("expected framed output")
	}

	// Every truncation point in the header region plus a sample of payload
	// truncations must error (the magic alone survives truncation to < 4
	// bytes: that is a v1 fallback, exercised separately).
	for cut := 4; cut < 64 && cut < len(frame); cut++ {
		if _, err := ChunkedDecode(ctx, nil, Raw{}, frame[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	for _, cut := range []int{len(frame) - 1, len(frame) - 100, len(frame) / 2} {
		if _, err := ChunkedDecode(ctx, nil, Raw{}, frame[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}

	mutate := func(fn func(b []byte)) []byte {
		b := bytes.Clone(frame)
		fn(b)
		return b
	}
	cases := map[string][]byte{
		// Zero chunk size (total uvarint for 10000 values is 2 bytes).
		"zero chunk size": mutate(func(b []byte) { b[6] = 0 }),
		// Chunk count that disagrees with ceil(total/chunkSize).
		"count mismatch": mutate(func(b []byte) { b[8]++ }),
		// First chunk length inflated: sum no longer matches payload.
		"length mismatch": mutate(func(b []byte) { b[9]++ }),
	}
	for name, b := range cases {
		if _, err := ChunkedDecode(ctx, nil, Raw{}, b); err == nil {
			t.Fatalf("%s: corrupt frame decoded successfully", name)
		}
	}

	// A frame whose chunk bitstreams decode to the wrong count (raw payload
	// truncated by 8 bytes with the header length patched to match) must be
	// caught by the per-chunk decode or count check.
	total, chunkSize, lens, _, err := parseChunkedHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the frame with a shortened last chunk length.
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, chunkedMagic)
	hdr = binary.AppendUvarint(hdr, uint64(total))
	hdr = binary.AppendUvarint(hdr, uint64(chunkSize))
	hdr = binary.AppendUvarint(hdr, uint64(len(lens)))
	for i, l := range lens {
		if i == len(lens)-1 {
			l -= 8
		}
		hdr = binary.AppendUvarint(hdr, uint64(l))
	}
	payloadStart := len(frame) - func() int {
		s := 0
		for _, l := range lens {
			s += l
		}
		return s
	}()
	bad := append(hdr, frame[payloadStart:len(frame)-8]...)
	if _, err := ChunkedDecode(ctx, nil, Raw{}, bad); err == nil {
		t.Fatal("frame with short last chunk decoded successfully")
	}
}

// TestChunkedDecodeIntoAllocs guards the allocation diet on the hot decode
// path: with a pre-sized destination, a framed raw decode allocates only the
// header-derived slices (lengths, offsets) — a small constant independent of
// the value count.
func TestChunkedDecodeIntoAllocs(t *testing.T) {
	ctx := context.Background()
	vals := smoothSignal(65536, 13)
	frame, err := ChunkedEncode(ctx, nil, Raw{}, vals, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(vals))
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ChunkedDecodeInto(ctx, nil, Raw{}, dst, frame); err != nil {
			t.Fatal(err)
		}
	})
	// lens + offs + a couple of interface/header temporaries. The bound is
	// deliberately loose on the constant but must not scale with 64Ki values
	// (which would add thousands).
	if allocs > 8 {
		t.Fatalf("ChunkedDecodeInto allocates %.0f objects per framed raw decode, want <= 8", allocs)
	}
}

// TestCodecDecodeIntoAllocs guards the per-codec DecodeInto fast paths: with
// a pre-sized destination the lossless codecs must not allocate per value.
func TestCodecDecodeIntoAllocs(t *testing.T) {
	vals := smoothSignal(16384, 17)
	for _, c := range losslessCodecs() {
		enc, err := c.Encode(vals)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		dst := make([]float64, len(vals))
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := c.DecodeInto(dst, enc); err != nil {
				t.Fatal(err)
			}
		})
		// Pooled scratch means steady-state decode touches no per-value
		// allocations; allow a small constant for pool round trips.
		if allocs > 8 {
			t.Fatalf("%s DecodeInto allocates %.0f objects per decode of 16Ki values, want <= 8", c.Name(), allocs)
		}
	}
}

func FuzzChunkedRoundTrip(f *testing.F) {
	f.Add(make([]byte, 16), uint16(1))
	f.Add(make([]byte, 800), uint16(7))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, chunk uint16) {
		n := len(raw) / 8
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			vals[i] = v
		}
		ctx := context.Background()
		chunkSize := int(chunk)
		for _, c := range []Codec{Raw{}, NewFPC(8), NewFlate()} {
			frame, err := ChunkedEncode(ctx, nil, c, vals, chunkSize)
			if err != nil {
				t.Fatalf("%s: encode: %v", c.Name(), err)
			}
			got, err := ChunkedDecode(ctx, nil, c, frame)
			if err != nil {
				t.Fatalf("%s: decode: %v", c.Name(), err)
			}
			if !bitEqual(got, vals) {
				t.Fatalf("%s: lossless chunked round trip not bit-exact", c.Name())
			}
		}
	})
}

// FuzzChunkedDecode feeds arbitrary bytes to the framed decoder: it must
// reject or decode without panicking, for every codec, like the v1 targets.
func FuzzChunkedDecode(f *testing.F) {
	seedCorpus(f)
	ctx := context.Background()
	z, _ := NewZFP(1e-3)
	sz, _ := NewSZ(1e-3)
	codecs := []Codec{Raw{}, NewFPC(8), NewFlate(), z, sz}
	frame, _ := ChunkedEncode(ctx, nil, Raw{}, smoothSignal(300, 1), 64)
	f.Add(frame)
	f.Add(frame[:len(frame)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			vals, err := ChunkedDecode(ctx, nil, c, data)
			if err == nil && len(vals) > len(data)*64+64 {
				t.Fatalf("%s: decoded %d values from %d bytes", c.Name(), len(vals), len(data))
			}
		}
	})
}
