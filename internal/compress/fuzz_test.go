package compress

import (
	"math"
	"testing"
)

// Decoder robustness: arbitrary bytes must never panic or hang a decoder —
// Canopus reads containers back from storage tiers that other tools may
// have produced or truncated. These fuzz targets run their seed corpora
// under plain `go test` and can be expanded with `go test -fuzz`.

func seedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x5a, 0x46, 0x31}) // zfp magic
	f.Add([]byte{0x43, 0x53, 0x5a, 0x31}) // sz magic
	f.Add([]byte{0x46, 0x50, 0x43, 0x31}) // fpc magic
	f.Add([]byte{0x43, 0x4c, 0x46, 0x31}) // flate magic
	f.Add(make([]byte, 64))
	z, _ := NewZFP(1e-3)
	enc, _ := z.Encode([]float64{1, 2, 3, 4, 5})
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	sz, _ := NewSZ(1e-3)
	enc2, _ := sz.Encode([]float64{1, 2, 3, 4, 5})
	f.Add(enc2)
	fp := NewFPC(8)
	enc3, _ := fp.Encode([]float64{1, 2, 3})
	f.Add(enc3)
}

func FuzzZFPDecode(f *testing.F) {
	seedCorpus(f)
	z, err := NewZFP(1e-3)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := z.Decode(data)
		if err == nil {
			// A successful decode must produce finite-sized output
			// with plausible magnitudes for re-encoding.
			if len(vals) > len(data)*64+64 {
				t.Fatalf("decoded %d values from %d bytes", len(vals), len(data))
			}
		}
	})
}

func FuzzSZDecode(f *testing.F) {
	seedCorpus(f)
	sz, err := NewSZ(1e-3)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sz.Decode(data) //nolint:errcheck // must not panic
	})
}

func FuzzFPCDecode(f *testing.F) {
	seedCorpus(f)
	c := NewFPC(8)
	f.Fuzz(func(t *testing.T, data []byte) {
		c.Decode(data) //nolint:errcheck // must not panic
	})
}

func FuzzFlateDecode(f *testing.F) {
	seedCorpus(f)
	c := NewFlate()
	f.Fuzz(func(t *testing.T, data []byte) {
		c.Decode(data) //nolint:errcheck // must not panic
	})
}

// FuzzZFPRoundTrip checks the error bound holds for arbitrary (finite)
// float inputs reconstructed from raw bytes.
func FuzzZFPRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8
		if n == 0 {
			return
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			var u uint64
			for j := 0; j < 8; j++ {
				u = u<<8 | uint64(raw[8*i+j])
			}
			v := math.Float64frombits(u)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			// Keep magnitudes in a range where the tolerance is
			// meaningful.
			if math.Abs(v) > 1e12 {
				return
			}
			vals[i] = v
		}
		const tol = 1e-3
		z, err := NewZFP(tol)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := z.Encode(vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := z.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(vals) {
			t.Fatalf("decoded %d, want %d", len(got), len(vals))
		}
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > tol {
				t.Fatalf("sample %d error %g exceeds %g", i, math.Abs(got[i]-vals[i]), tol)
			}
		}
	})
}
