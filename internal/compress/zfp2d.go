package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ZFP2D is the two-dimensional variant of the ZFP-like coder for structured
// grids (the native layout of the real ZFP library): the field is tiled
// into 4x4 blocks, each block gets a shared exponent, a separable
// orthogonal transform decorrelates rows then columns, and the 16
// coefficients are coded in sequency order with the same embedded bit-plane
// scheme as the 1D codec. Exploiting correlation along *both* axes is what
// lets 2D blocks beat the linearized 1D codec on grid data — quantified by
// TestZFP2DBeats1DOnGrids.
//
// It does not implement the 1D Codec interface because its payload is a
// shaped grid, not a flat stream; the grid package is its consumer.
type ZFP2D struct {
	tol float64
}

// NewZFP2D returns a 2D coder with absolute error bound tol (>= 0; 0 keeps
// every bit plane, making it near-lossless like the 1D codec).
func NewZFP2D(tol float64) (*ZFP2D, error) {
	if math.IsNaN(tol) || math.IsInf(tol, 0) || tol < 0 {
		return nil, fmt.Errorf("compress: invalid zfp2d tolerance %g", tol)
	}
	return &ZFP2D{tol: tol}, nil
}

// ErrorBound reports the configured absolute error bound.
func (z *ZFP2D) ErrorBound() float64 { return z.tol }

const zfp2dMagic = 0x32465a43 // "CZF2"

// zigzag16 orders the 16 transform coefficients by total sequency so the
// significance prefix of the plane coder grows front-to-back.
var zigzag16 = [16]int{
	0, 1, 4, 8,
	5, 2, 3, 6,
	9, 12, 13, 10,
	7, 11, 14, 15,
}

// Encode compresses an nx x ny row-major grid.
func (z *ZFP2D) Encode(vals []float64, nx, ny int) ([]byte, error) {
	if nx < 1 || ny < 1 || len(vals) != nx*ny {
		return nil, fmt.Errorf("compress: zfp2d grid %dx%d with %d values", nx, ny, len(vals))
	}
	if err := checkFinite(vals); err != nil {
		return nil, err
	}
	w := getBitWriter()
	defer putBitWriter(w)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, zfp2dMagic)
	w.buf = binary.AppendUvarint(w.buf, uint64(nx))
	w.buf = binary.AppendUvarint(w.buf, uint64(ny))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(z.tol))

	var block [16]float64
	for by := 0; by < ny; by += 4 {
		for bx := 0; bx < nx; bx += 4 {
			// Gather with edge replication so partial blocks stay
			// smooth.
			for j := 0; j < 4; j++ {
				y := by + j
				if y >= ny {
					y = ny - 1
				}
				for i := 0; i < 4; i++ {
					x := bx + i
					if x >= nx {
						x = nx - 1
					}
					block[j*4+i] = vals[y*nx+x]
				}
			}
			encodeZFP2DBlock(w, &block, z.tol)
		}
	}
	return w.finish(), nil
}

func encodeZFP2DBlock(w *bitWriter, f *[16]float64, tol float64) {
	amax := 0.0
	for _, v := range f {
		amax = math.Max(amax, math.Abs(v))
	}
	if amax == 0 {
		w.writeBit(0)
		return
	}
	_, e := math.Frexp(amax)
	scale := math.Ldexp(1, zfpQ-e)
	var q [16]int64
	for i, v := range f {
		q[i] = int64(math.RoundToEven(v * scale))
	}
	// Separable sequency-ordered Hadamard: rows, then columns. Total
	// gain 16, so |c| <= 16 * 2^52 = 2^56 fits comfortably in int64.
	for r := 0; r < 4; r++ {
		hadamard4(q[4*r : 4*r+4])
	}
	var col [4]int64
	for cidx := 0; cidx < 4; cidx++ {
		for r := 0; r < 4; r++ {
			col[r] = q[4*r+cidx]
		}
		hadamard4(col[:])
		for r := 0; r < 4; r++ {
			q[4*r+cidx] = col[r]
		}
	}
	var u [16]uint64
	maxPlane := -1
	for i := range q {
		u[i] = toNegabinary(q[zigzag16[i]])
		if u[i] != 0 {
			if p := 63 - bits.LeadingZeros64(u[i]); p > maxPlane {
				maxPlane = p
			}
		}
	}
	minPlane := minPlane2DFor(tol, e)
	if maxPlane < minPlane {
		w.writeBit(0)
		return
	}
	w.writeBit(1)
	w.writeBits(uint64(e+2048), 12)
	w.writeBits(uint64(maxPlane), 6)
	n := uint(0)
	for p := maxPlane; p >= minPlane; p-- {
		encodePlane16(w, &u, uint(p), &n)
	}
}

// hadamard4 applies the in-place sequency-ordered 4-point Hadamard.
func hadamard4(v []int64) {
	a, b, c, d := v[0], v[1], v[2], v[3]
	v[0] = a + b + c + d
	v[1] = a + b - c - d
	v[2] = a - b - c + d
	v[3] = a - b + c - d
}

// invHadamard4 inverts hadamard4 up to the factor 4 (H*H = 4I).
func invHadamard4(v []int64) {
	hadamard4(v)
}

// minPlane2DFor mirrors minPlaneFor with the 2D error budget: the inverse
// separable transform maps per-coefficient error e_c to at most e_c per
// sample (two orthogonal 1D inverses, each non-expanding in max-norm after
// the 1/4 normalizations), so the same plane bound applies with one extra
// guard bit for the second pass.
func minPlane2DFor(tol float64, e int) int {
	if tol == 0 {
		return 0
	}
	p := math.Ilogb(tol) + zfpQ - e - 3
	if p < 0 {
		p = 0
	}
	if p > 63 {
		p = 64
	}
	return p
}

// encodePlane16 is the 16-coefficient embedded plane coder (the 4-wide
// version lives in zfp.go; the scheme is identical with a longer prefix).
func encodePlane16(w *bitWriter, u *[16]uint64, p uint, n *uint) {
	var x uint64
	for i := 0; i < 16; i++ {
		x |= ((u[i] >> p) & 1) << uint(i)
	}
	w.writeBits(x, *n)
	x >>= *n
	for *n < 16 {
		if x == 0 {
			w.writeBit(0)
			return
		}
		w.writeBit(1)
		for {
			b := x & 1
			x >>= 1
			*n++
			w.writeBit(b)
			if b == 1 {
				break
			}
		}
	}
}

func decodePlane16(r *bitReader, n *uint) (uint64, error) {
	x, err := r.readBits(*n)
	if err != nil {
		return 0, err
	}
	for *n < 16 {
		g, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if g == 0 {
			break
		}
		for {
			b, err := r.readBit()
			if err != nil {
				return 0, err
			}
			if b == 1 {
				x |= 1 << *n
				*n++
				break
			}
			*n++
		}
	}
	return x, nil
}

// parseZFP2DHeader validates the grid stream header shared by the batch and
// scalar decoders.
func parseZFP2DHeader(data []byte) (nx, ny int, tol float64, payload []byte, err error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != zfp2dMagic {
		return 0, 0, 0, nil, errors.New("compress: bad zfp2d magic")
	}
	off := 4
	nxU, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, 0, nil, errors.New("compress: truncated zfp2d header")
	}
	off += n
	nyU, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, 0, nil, errors.New("compress: truncated zfp2d header")
	}
	off += n
	if len(data)-off < 8 {
		return 0, 0, 0, nil, errors.New("compress: truncated zfp2d header")
	}
	tol = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	nx, ny = int(nxU), int(nyU)
	if nx < 1 || ny < 1 || nxU*nyU > uint64(len(data))*512 {
		return 0, 0, 0, nil, fmt.Errorf("compress: implausible zfp2d dims %dx%d", nx, ny)
	}
	return nx, ny, tol, data[off:], nil
}

// Decode reverses Encode, returning the grid values and its dimensions.
func (z *ZFP2D) Decode(data []byte) ([]float64, int, int, error) {
	return z.DecodeInto(nil, data)
}

// DecodeInto is Decode with destination reuse, running the batch bit-plane
// decoder (zfp_batch.go). dst's backing array is reused when its capacity
// covers the stored grid.
func (z *ZFP2D) DecodeInto(dst []float64, data []byte) ([]float64, int, int, error) {
	nx, ny, tol, payload, err := parseZFP2DHeader(data)
	if err != nil {
		return nil, 0, 0, err
	}
	out := sizeFloats(dst, nx*ny)
	r := bitReader{buf: payload}
	if err := zfp2dDecodeBlocks(&r, tol, out, nx, ny); err != nil {
		return nil, 0, 0, err
	}
	return out, nx, ny, nil
}

// decodeScalar is the retained scalar 2D decoder, the fuzz reference for the
// batch path (FuzzZFP2DBatchVsScalar); it takes no part in production reads.
func (z *ZFP2D) decodeScalar(data []byte) ([]float64, int, int, error) {
	nx, ny, tol, payload, err := parseZFP2DHeader(data)
	if err != nil {
		return nil, 0, 0, err
	}
	out := make([]float64, nx*ny)
	r := newBitReader(payload)
	var block [16]float64
	for by := 0; by < ny; by += 4 {
		for bx := 0; bx < nx; bx += 4 {
			if err := decodeZFP2DBlock(r, tol, &block); err != nil {
				return nil, 0, 0, err
			}
			for j := 0; j < 4 && by+j < ny; j++ {
				for i := 0; i < 4 && bx+i < nx; i++ {
					out[(by+j)*nx+bx+i] = block[j*4+i]
				}
			}
		}
	}
	return out, nx, ny, nil
}

func decodeZFP2DBlock(r *bitReader, tol float64, f *[16]float64) error {
	for i := range f {
		f[i] = 0
	}
	nz, err := r.readBit()
	if err != nil {
		return err
	}
	if nz == 0 {
		return nil
	}
	eRaw, err := r.readBits(12)
	if err != nil {
		return err
	}
	e := int(eRaw) - 2048
	mpRaw, err := r.readBits(6)
	if err != nil {
		return err
	}
	maxPlane := int(mpRaw)
	minPlane := minPlane2DFor(tol, e)
	var u [16]uint64
	n := uint(0)
	for p := maxPlane; p >= minPlane; p-- {
		x, err := decodePlane16(r, &n)
		if err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			u[i] |= ((x >> uint(i)) & 1) << uint(p)
		}
	}
	var q [16]int64
	for i := range q {
		q[zigzag16[i]] = fromNegabinary(u[i])
	}
	// Inverse separable transform: columns, then rows; divide the total
	// 16x gain once at the float conversion.
	var col [4]int64
	for cidx := 0; cidx < 4; cidx++ {
		for r := 0; r < 4; r++ {
			col[r] = q[4*r+cidx]
		}
		invHadamard4(col[:])
		for r := 0; r < 4; r++ {
			q[4*r+cidx] = col[r]
		}
	}
	for r := 0; r < 4; r++ {
		invHadamard4(q[4*r : 4*r+4])
	}
	inv := math.Ldexp(1, e-zfpQ) / 16
	for i := range f {
		f[i] = float64(q[i]) * inv
	}
	return nil
}
