package compress

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Process-wide tile-cache metrics, aggregated across every TileCache
// instance (per-cache numbers stay available through Stats). Merges count
// readers that piggybacked on another reader's in-flight decode; fills count
// actual decodes, so misses = fills + merges once in-flight work settles.
var (
	metricTileCacheHits          = obs.NewCounter("canopus_compress_tile_cache_hits_total")
	metricTileCacheMisses        = obs.NewCounter("canopus_compress_tile_cache_misses_total")
	metricTileCacheMerges        = obs.NewCounter("canopus_compress_tile_cache_merges_total")
	metricTileCacheFills         = obs.NewCounter("canopus_compress_tile_cache_fills_total")
	metricTileCacheEvictions     = obs.NewCounter("canopus_compress_tile_cache_evictions_total")
	metricTileCacheInvalidations = obs.NewCounter("canopus_compress_tile_cache_invalidations_total")
	metricTileCacheBytes         = obs.NewGauge("canopus_compress_tile_cache_bytes")
)

// TileCache is an optional byte-budgeted cache of *decoded* tiles, shared
// across requests: repeated analytics over the same region pay the bit-plane
// decode once and serve the floats from memory afterwards. It complements
// the adios page cache one layer up — the page cache removes backend byte
// traffic, this cache removes decompression CPU. It deliberately does NOT
// short-circuit the byte fetch: the modeled cost of every extent a request
// touches stays deterministic whether or not caches are attached (the same
// invariant the page cache keeps), so a cache hit shows up as ~0 decompress
// seconds in CostReport while the I/O columns are unchanged.
//
// Keys are (storage key, generation, level, tile index); the generation is
// baked into the key and bumped by Invalidate, so decodes that were already
// in flight when a writer invalidated the key land under a dead generation
// and can never serve stale floats (the page cache's invalidation rule,
// DESIGN.md §14). Concurrent readers missing the same tile trigger exactly
// one decode (single-flight). Eviction is LRU over whole tiles by byte size.
//
// Cached slices are shared between callers and MUST be treated read-only;
// callers that hand decoded values to mutating consumers copy out first.
type TileCache struct {
	maxBytes int64

	mu    sync.Mutex
	tiles map[tileKey]*list.Element
	lru   *list.List // front = most recent; values are *tileEntry
	gens  map[string]uint64
	bytes int64

	flight engine.Group

	hits   atomic.Int64
	misses atomic.Int64
}

// tileKey addresses one decoded tile. ci is the tile (chunk) index within
// the container; BaseTile (-1) addresses a container's whole base/direct
// product.
type tileKey struct {
	key   string
	gen   uint64
	level int
	ci    int
}

// BaseTile is the tile index under which a container's whole decoded
// base/direct product is cached.
const BaseTile = -1

type tileEntry struct {
	k    tileKey
	vals []float64
}

// NewTileCache builds a cache bounded to capacity bytes of decoded values.
// It holds at least one tile regardless of capacity.
func NewTileCache(capacity int64) *TileCache {
	return &TileCache{
		maxBytes: capacity,
		tiles:    make(map[tileKey]*list.Element),
		lru:      list.New(),
		gens:     make(map[string]uint64),
	}
}

// Stats reports tile hits and misses since construction.
func (c *TileCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// SizeBytes reports the bytes of decoded values currently held.
func (c *TileCache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *TileCache) generation(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[key]
}

// lookup returns the cached tile and bumps its recency, or nil.
func (c *TileCache) lookup(k tileKey) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.tiles[k]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*tileEntry).vals
}

// insert stores a decoded tile and evicts LRU tiles past the byte budget.
func (c *TileCache) insert(k tileKey, vals []float64) {
	sz := int64(len(vals)) * 8
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.tiles[k]; ok {
		e := el.Value.(*tileEntry)
		c.bytes += sz - int64(len(e.vals))*8
		e.vals = vals
		c.lru.MoveToFront(el)
	} else {
		c.tiles[k] = c.lru.PushFront(&tileEntry{k: k, vals: vals})
		c.bytes += sz
	}
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		last := c.lru.Back()
		c.lru.Remove(last)
		victim := last.Value.(*tileEntry)
		delete(c.tiles, victim.k)
		c.bytes -= int64(len(victim.vals)) * 8
		metricTileCacheEvictions.Inc()
	}
	metricTileCacheBytes.Set(c.bytes)
}

// Invalidate drops every cached tile of one storage key and bumps its
// generation. Writers call it when a key is overwritten so readers never
// see stale decoded values; decodes already in flight land under the dead
// generation.
func (c *TileCache) Invalidate(key string) {
	metricTileCacheInvalidations.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[key]++
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*tileEntry)
		if e.k.key == key {
			c.lru.Remove(el)
			delete(c.tiles, e.k)
			c.bytes -= int64(len(e.vals)) * 8
		}
		el = next
	}
	metricTileCacheBytes.Set(c.bytes)
}

// GetOrDecode returns the decoded tile (level, ci) of container key, running
// decode on a miss with at most one decode in flight per tile across all
// concurrent readers. hit reports whether this call was served from cache
// without waiting on a decode it triggered itself; single-flight merges
// count as misses for attribution (the caller did wait on decode latency).
// The hit path performs no allocations. The returned slice is shared and
// read-only.
func (c *TileCache) GetOrDecode(key string, level, ci int, decode func() ([]float64, error)) (vals []float64, hit bool, err error) {
	k := tileKey{key: key, gen: c.generation(key), level: level, ci: ci}
	if vals := c.lookup(k); vals != nil {
		c.hits.Add(1)
		metricTileCacheHits.Inc()
		return vals, true, nil
	}
	c.misses.Add(1)
	metricTileCacheMisses.Inc()
	fetched := false
	v, err := c.flight.Do(fmt.Sprintf("%s\x00%d\x00%d\x00%d", k.key, k.gen, k.level, k.ci), func() (any, error) {
		if vals := c.lookup(k); vals != nil {
			return vals, nil // raced with another fill
		}
		vals, err := decode()
		if err != nil {
			return nil, err
		}
		fetched = true
		metricTileCacheFills.Inc()
		// Insert under the generation read at entry: if the key was
		// invalidated while the decode ran, the entry is dead on arrival
		// and unreachable by later readers.
		c.insert(k, vals)
		return vals, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !fetched {
		metricTileCacheMerges.Inc()
	}
	return v.([]float64), false, nil
}
