package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ZFP is a fixed-accuracy transform coder for float64 streams, modeled on
// the ZFP compressor the paper integrates (Lindstrom, TVCG 2014):
//
//  1. the stream is split into blocks of 4 samples;
//  2. each block is converted to block floating point — a shared exponent e
//     and 52-bit fixed-point integers;
//  3. an orthogonal 4-point Hadamard transform (sequency-ordered)
//     decorrelates the block, concentrating energy in low coefficients for
//     smooth data;
//  4. coefficients map to negabinary so magnitude shrinks monotonically with
//     bit position regardless of sign;
//  5. bit planes are coded most-significant first with a significance-prefix
//     run-length scheme, truncated at the plane where the accumulated error
//     stays within the caller's absolute tolerance.
//
// Differences from the C library are documented in DESIGN.md: the
// decorrelating transform is the orthogonal Hadamard rather than ZFP's
// non-orthogonal lift (same role, simpler exact error analysis), and blocks
// are 1D because Canopus linearizes unstructured-mesh payloads.
//
// Smoothness wins: a block whose 4 samples are close together has tiny AC
// coefficients, so almost all bits concentrate in the DC coefficient and the
// plane coder stops early. That is exactly the property Canopus exploits —
// deltas are smoother than the levels themselves, so they compress better
// (Fig. 5).
type ZFP struct {
	tol float64
}

// NewZFP returns a ZFP-like codec with absolute error bound tol. tol must be
// non-negative; tol = 0 keeps all bit planes (near-lossless: error bounded
// by fixed-point quantization, ~2^-50 of each block's magnitude).
func NewZFP(tol float64) (*ZFP, error) {
	if math.IsNaN(tol) || math.IsInf(tol, 0) || tol < 0 {
		return nil, fmt.Errorf("compress: invalid zfp tolerance %g", tol)
	}
	return &ZFP{tol: tol}, nil
}

// Name implements Codec.
func (z *ZFP) Name() string { return "zfp" }

// Lossless implements Codec.
func (z *ZFP) Lossless() bool { return false }

// ErrorBound implements Codec.
func (z *ZFP) ErrorBound() float64 { return z.tol }

const (
	zfpMagic = 0x31465a43 // "CZF1"
	// zfpQ is the fixed-point precision: samples scale to integers of
	// magnitude <= 2^zfpQ before the transform.
	zfpQ = 52
	// negabinary mapping constant (…10101010 pattern).
	nbMask = 0xaaaaaaaaaaaaaaaa
)

func toNegabinary(x int64) uint64   { return (uint64(x) + nbMask) ^ nbMask }
func fromNegabinary(u uint64) int64 { return int64((u ^ nbMask) - nbMask) }

// minPlaneFor returns the lowest bit plane kept for a block with shared
// exponent e under absolute tolerance tol. Planes below it are truncated.
func minPlaneFor(tol float64, e int) int {
	if tol == 0 {
		return 0
	}
	// Coefficient truncation at plane p injects < 2^p per coefficient in
	// fixed-point units, which the inverse orthogonal transform maps to
	// at most 2^p per sample, i.e. 2^p * 2^(e-zfpQ) in value units.
	// Choose p so that is <= tol/4, leaving budget for quantization and
	// float-conversion rounding.
	p := math.Ilogb(tol) + zfpQ - e - 2
	if p < 0 {
		p = 0
	}
	if p > 63 {
		p = 64 // everything truncated
	}
	return p
}

// Encode implements Codec. The bit writer (and its grown buffer) comes from
// a pool and the finished stream is copied out exactly-sized, so a steady
// encode loop allocates once per call — the returned payload.
func (z *ZFP) Encode(vals []float64) ([]byte, error) {
	if err := checkFinite(vals); err != nil {
		return nil, err
	}
	w := getBitWriter()
	defer putBitWriter(w)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, zfpMagic)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(vals)))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(z.tol))

	var block [4]float64
	for i := 0; i < len(vals); i += 4 {
		k := copy(block[:], vals[i:])
		// Pad short tail blocks by replicating the last sample, which
		// keeps the padded block smooth.
		for j := k; j < 4; j++ {
			block[j] = block[k-1]
		}
		encodeZFPBlock(w, block, z.tol)
	}
	return w.finish(), nil
}

func encodeZFPBlock(w *bitWriter, f [4]float64, tol float64) {
	amax := math.Max(math.Max(math.Abs(f[0]), math.Abs(f[1])), math.Max(math.Abs(f[2]), math.Abs(f[3])))
	if amax == 0 {
		w.writeBit(0) // zero block
		return
	}
	// Shared exponent: amax < 2^e.
	_, e := math.Frexp(amax) // amax = frac * 2^e, frac in [0.5, 1)
	scale := math.Ldexp(1, zfpQ-e)
	var q [4]int64
	for i, v := range f {
		q[i] = int64(math.RoundToEven(v * scale))
	}
	// Sequency-ordered 4-point Hadamard.
	c := [4]int64{
		q[0] + q[1] + q[2] + q[3],
		q[0] + q[1] - q[2] - q[3],
		q[0] - q[1] - q[2] + q[3],
		q[0] - q[1] + q[2] - q[3],
	}
	var u [4]uint64
	maxPlane := -1
	for i, ci := range c {
		u[i] = toNegabinary(ci)
		if u[i] != 0 {
			if p := 63 - bits.LeadingZeros64(u[i]); p > maxPlane {
				maxPlane = p
			}
		}
	}
	minPlane := minPlaneFor(tol, e)
	if maxPlane < minPlane {
		// All coefficient content is below the tolerance cutoff:
		// representable as a zero block within the error bound.
		w.writeBit(0)
		return
	}
	w.writeBit(1)
	w.writeBits(uint64(e+2048), 12)
	w.writeBits(uint64(maxPlane), 6)
	n := uint(0) // significance prefix, grows monotonically across planes
	for p := maxPlane; p >= minPlane; p-- {
		var x uint64
		for i := 0; i < 4; i++ {
			x |= ((u[i] >> uint(p)) & 1) << uint(i)
		}
		encodePlane(w, x, &n)
	}
}

// encodePlane emits one 4-bit plane x using the significance-prefix scheme:
// the first *n coefficients (already significant in an earlier plane) emit
// raw bits; the rest are run-length coded — a group-test bit says whether
// any 1 remains, then zero bits are emitted until the terminating 1, which
// extends the significance prefix.
func encodePlane(w *bitWriter, x uint64, n *uint) {
	w.writeBits(x, *n)
	x >>= *n
	for *n < 4 {
		if x == 0 {
			w.writeBit(0)
			return
		}
		w.writeBit(1)
		for {
			b := x & 1
			x >>= 1
			*n++
			w.writeBit(b)
			if b == 1 {
				break
			}
		}
	}
}

func decodePlane(r *bitReader, n *uint) (uint64, error) {
	x, err := r.readBits(*n)
	if err != nil {
		return 0, err
	}
	for *n < 4 {
		g, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if g == 0 {
			break
		}
		for {
			b, err := r.readBit()
			if err != nil {
				return 0, err
			}
			if b == 1 {
				x |= 1 << *n
				*n++
				break
			}
			*n++
		}
	}
	return x, nil
}

// Decode implements Codec.
func (z *ZFP) Decode(data []byte) ([]float64, error) {
	return z.DecodeInto(nil, data)
}

// parseZFPHeader validates the stream header shared by the batch and scalar
// decoders and returns the stored value count, the encode-time tolerance,
// and the bit-plane payload.
func parseZFPHeader(data []byte) (count int, tol float64, payload []byte, err error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != zfpMagic {
		return 0, 0, nil, errors.New("compress: bad zfp magic")
	}
	off := 4
	countU, nn := binary.Uvarint(data[off:])
	if nn <= 0 {
		return 0, 0, nil, errors.New("compress: truncated zfp header")
	}
	off += nn
	if len(data)-off < 8 {
		return 0, 0, nil, errors.New("compress: truncated zfp header")
	}
	tol = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if countU > uint64(len(data))*64 {
		return 0, 0, nil, fmt.Errorf("compress: implausible zfp count %d", countU)
	}
	return int(countU), tol, data[off:], nil
}

// DecodeInto implements Codec through the batch bit-plane decoder
// (zfp_batch.go): whole 64-bit words move from the stream into a register,
// significance runs collapse to TrailingZeros counts, and tolerance-truncated
// blocks accumulate through the spread table. The bit reader lives on the
// stack and the output goes straight into dst when it has capacity, so a
// warm decode loop performs no allocations.
func (z *ZFP) DecodeInto(dst []float64, data []byte) ([]float64, error) {
	count, tol, payload, err := parseZFPHeader(data)
	if err != nil {
		return nil, err
	}
	out := sizeFloats(dst, count)
	r := bitReader{buf: payload}
	if err := zfpDecodeBlocks(&r, tol, out); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeIntoScalar is the retained scalar decoder: one readBit per stream
// bit, exactly the pre-batch implementation. It is the reference the batch
// decoder is fuzzed against (FuzzZFPBatchVsScalar) and takes no part in the
// production read path.
func (z *ZFP) decodeIntoScalar(dst []float64, data []byte) ([]float64, error) {
	count, tol, payload, err := parseZFPHeader(data)
	if err != nil {
		return nil, err
	}
	out := sizeFloats(dst, count)
	r := bitReader{buf: payload}
	for i := 0; i < len(out); i += 4 {
		blk, err := decodeZFPBlock(&r, tol)
		if err != nil {
			return nil, err
		}
		copy(out[i:], blk[:])
	}
	return out, nil
}

func decodeZFPBlock(r *bitReader, tol float64) ([4]float64, error) {
	var f [4]float64
	nz, err := r.readBit()
	if err != nil {
		return f, err
	}
	if nz == 0 {
		return f, nil
	}
	eRaw, err := r.readBits(12)
	if err != nil {
		return f, err
	}
	e := int(eRaw) - 2048
	mpRaw, err := r.readBits(6)
	if err != nil {
		return f, err
	}
	maxPlane := int(mpRaw)
	minPlane := minPlaneFor(tol, e)
	var u [4]uint64
	n := uint(0)
	for p := maxPlane; p >= minPlane; p-- {
		x, err := decodePlane(r, &n)
		if err != nil {
			return f, err
		}
		for i := 0; i < 4; i++ {
			u[i] |= ((x >> uint(i)) & 1) << uint(p)
		}
	}
	c := [4]int64{
		fromNegabinary(u[0]),
		fromNegabinary(u[1]),
		fromNegabinary(u[2]),
		fromNegabinary(u[3]),
	}
	// Inverse Hadamard (the matrix is symmetric and H*H = 4I).
	q := [4]int64{
		c[0] + c[1] + c[2] + c[3],
		c[0] + c[1] - c[2] - c[3],
		c[0] - c[1] - c[2] + c[3],
		c[0] - c[1] + c[2] - c[3],
	}
	inv := math.Ldexp(1, e-zfpQ) / 4
	for i := range f {
		f[i] = float64(q[i]) * inv
	}
	return f, nil
}
