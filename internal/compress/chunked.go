package compress

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// This file implements the v2 chunked container: a product's values are
// split into fixed-size chunks, each chunk is encoded as an independent
// bitstream with the underlying codec, and a small header records per-chunk
// encoded lengths so decode can seek to any chunk without parsing its
// neighbors. Independence is what buys intra-product parallelism — the
// paper's read-path decomposition stops at whole products, which leaves a
// single large product's decompress phase serial; chunking pushes the
// "embarrassingly parallel" boundary inside the product.
//
// Frame layout (all integers little-endian or uvarint):
//
//	u32      magic "CCK2"
//	uvarint  total value count
//	uvarint  chunk size (values per chunk; last chunk may be short)
//	uvarint  nChunks (must equal ceil(total/chunkSize))
//	uvarint  encoded length of each chunk, nChunks times
//	bytes    concatenated chunk bitstreams (lengths must sum exactly)
//
// ChunkedEncode returns a plain v1 codec stream when the input fits in one
// chunk, so small products (delta tiles, coarse levels) pay zero framing
// overhead, and readers must sniff: ChunkedDecode falls back to the plain
// codec when the magic is absent. The raw codec is the one v1 format with no
// magic of its own; a raw v1 payload whose first 4 bytes collide with "CCK2"
// (probability 2^-32 on float data) fails the strict header validation below
// and is rejected loudly rather than misread.
//
// Chunk bitstreams are assembled in index order regardless of which worker
// encoded them, so the stored bytes are identical at every worker count.

const (
	chunkedMagic = 0x324b4343 // "CCK2"
	// DefaultChunkSize is the values-per-chunk used when callers pass
	// chunkSize <= 0. 4096 float64s (32 KiB raw) amortizes per-chunk codec
	// headers to <1% while leaving enough chunks per product to occupy a
	// pool.
	DefaultChunkSize = 4096
)

// Compression-path metrics: chunk counts on both directions plus how many
// decodes took the framed (fan-out capable) path versus v1 fallback.
var (
	metricEncodeChunks  = obs.NewCounter("canopus_compress_encode_chunks_total")
	metricDecodeChunks  = obs.NewCounter("canopus_compress_decode_chunks_total")
	metricFramedDecodes = obs.NewCounter("canopus_compress_framed_decodes_total")
	metricV1Decodes     = obs.NewCounter("canopus_compress_v1_decodes_total")
)

// Runner is the slice of engine.Pool the chunked container needs: sharded
// fan-out over an index range. Declaring it here keeps compress free of an
// engine dependency; *engine.Pool satisfies it, including as a typed nil
// (which runs serially).
type Runner interface {
	RunRange(ctx context.Context, n int, fn func(start, end int) error) error
}

// serialRunner is the fallback when callers pass a nil Runner interface.
type serialRunner struct{}

func (serialRunner) RunRange(ctx context.Context, n int, fn func(start, end int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	return fn(0, n)
}

func runnerOr(pool Runner) Runner {
	if pool == nil {
		return serialRunner{}
	}
	return pool
}

// IsChunkedFrame reports whether data starts with the v2 container magic.
// It is a sniff, not a validation — ChunkedDecode still rejects frames whose
// headers do not check out.
func IsChunkedFrame(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == chunkedMagic
}

// ChunkedEncode compresses vals with c inside the v2 chunked container.
// Inputs that fit in a single chunk are returned as a plain v1 codec stream
// with no framing. chunkSize <= 0 selects DefaultChunkSize. Chunks are
// encoded concurrently on pool but assembled in order, so the output is
// byte-identical at every worker count.
func ChunkedEncode(ctx context.Context, pool Runner, c Codec, vals []float64, chunkSize int) ([]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if len(vals) <= chunkSize {
		return c.Encode(vals)
	}
	nChunks := (len(vals) + chunkSize - 1) / chunkSize
	encs := make([][]byte, nChunks)
	err := runnerOr(pool).RunRange(ctx, nChunks, func(start, end int) error {
		for i := start; i < end; i++ {
			lo := i * chunkSize
			hi := lo + chunkSize
			if hi > len(vals) {
				hi = len(vals)
			}
			enc, err := c.Encode(vals[lo:hi])
			if err != nil {
				return fmt.Errorf("compress: chunked frame chunk %d/%d: %w", i, nChunks, err)
			}
			encs[i] = enc
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	metricEncodeChunks.Add(int64(nChunks))

	size := 4 + 3*binary.MaxVarintLen64
	for _, e := range encs {
		size += binary.MaxVarintLen64 + len(e)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, chunkedMagic)
	out = binary.AppendUvarint(out, uint64(len(vals)))
	out = binary.AppendUvarint(out, uint64(chunkSize))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for _, e := range encs {
		out = binary.AppendUvarint(out, uint64(len(e)))
	}
	for _, e := range encs {
		out = append(out, e...)
	}
	return out, nil
}

// ChunkedDecode reverses ChunkedEncode: framed payloads decode chunk-wise
// (concurrently on pool), plain v1 payloads fall through to c.Decode.
func ChunkedDecode(ctx context.Context, pool Runner, c Codec, data []byte) ([]float64, error) {
	return ChunkedDecodeInto(ctx, pool, c, nil, data)
}

// ChunkedDecodeInto is ChunkedDecode with dst reuse, mirroring
// Codec.DecodeInto. Each chunk decodes directly into its slot of the output
// slice, so a framed decode performs no per-chunk output allocations, and
// results are bit-identical at every worker count.
func ChunkedDecodeInto(ctx context.Context, pool Runner, c Codec, dst []float64, data []byte) ([]float64, error) {
	if !IsChunkedFrame(data) {
		metricV1Decodes.Inc()
		return c.DecodeInto(dst, data)
	}
	total, chunkSize, lens, payload, err := parseChunkedHeader(data)
	if err != nil {
		return nil, err
	}
	nChunks := len(lens)
	metricFramedDecodes.Inc()
	metricDecodeChunks.Add(int64(nChunks))
	span := obs.FromContext(ctx).Child("compress.chunked_decode")
	span.SetAttrInt("chunks", nChunks)
	span.SetAttrInt("values", total)
	defer span.End()

	// Prefix-sum the chunk lengths once so workers can seek independently.
	offs := make([]int, nChunks+1)
	for i, l := range lens {
		offs[i+1] = offs[i] + l
	}
	out := sizeFloats(dst, total)
	err = runnerOr(pool).RunRange(ctx, nChunks, func(start, end int) error {
		for i := start; i < end; i++ {
			lo := i * chunkSize
			hi := lo + chunkSize
			if hi > total {
				hi = total
			}
			// Three-index subslice: a corrupt chunk that claims more values
			// than its slot forces the codec to allocate instead of stomping
			// the neighbor chunk, and the count check below rejects it.
			sub := out[lo:hi:hi]
			got, err := c.DecodeInto(sub, payload[offs[i]:offs[i+1]])
			if err != nil {
				return fmt.Errorf("compress: chunked frame chunk %d/%d: %w", i, nChunks, err)
			}
			if len(got) != hi-lo {
				return fmt.Errorf("compress: chunked frame chunk %d/%d: decoded %d values, want %d", i, nChunks, len(got), hi-lo)
			}
			if &got[0] != &sub[0] {
				copy(sub, got)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseChunkedHeader validates the v2 frame exhaustively: the chunk count
// must match ceil(total/chunkSize) and the encoded lengths must sum to
// exactly the remaining bytes. The strictness is what makes magic collision
// with an unframed raw payload a loud error instead of silent corruption.
func parseChunkedHeader(data []byte) (total, chunkSize int, lens []int, payload []byte, err error) {
	off := 4
	totalU, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, nil, nil, errors.New("compress: truncated chunked header (total)")
	}
	off += n
	chunkU, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, nil, nil, errors.New("compress: truncated chunked header (chunk size)")
	}
	off += n
	nChunksU, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, nil, nil, errors.New("compress: truncated chunked header (chunk count)")
	}
	off += n
	if chunkU == 0 {
		return 0, 0, nil, nil, errors.New("compress: chunked frame has zero chunk size")
	}
	if totalU > uint64(len(data))*64 {
		return 0, 0, nil, nil, fmt.Errorf("compress: implausible chunked value count %d", totalU)
	}
	want := (totalU + chunkU - 1) / chunkU
	if nChunksU != want || nChunksU == 0 {
		return 0, 0, nil, nil, fmt.Errorf("compress: chunked frame count mismatch: %d chunks for %d values of chunk size %d", nChunksU, totalU, chunkU)
	}
	lens = make([]int, nChunksU)
	sum := uint64(0)
	for i := range lens {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, 0, nil, nil, fmt.Errorf("compress: truncated chunked header (length %d/%d)", i, nChunksU)
		}
		off += n
		if l > uint64(len(data)) {
			return 0, 0, nil, nil, fmt.Errorf("compress: implausible chunk length %d", l)
		}
		lens[i] = int(l)
		sum += l
	}
	if sum != uint64(len(data)-off) {
		return 0, 0, nil, nil, fmt.Errorf("compress: chunked frame length mismatch: chunks sum to %d bytes, %d remain", sum, len(data)-off)
	}
	return int(totalU), int(chunkU), lens, data[off:], nil
}
