package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// SZ is an error-bounded predictive coder modeled on the SZ compressor (Di &
// Cappello, IPDPS 2016) the paper lists as an in-progress Canopus
// integration.
//
// Each sample is predicted from the previously *reconstructed* samples with
// a linear curve fit (pred = 2*r[i-1] - r[i-2]); the prediction residual is
// quantized to an integer code with linear scaling (step = 2*eb), which
// guarantees |value - reconstruction| <= eb. Codes are zig-zag varint
// encoded and the byte stream is entropy-coded with DEFLATE, standing in for
// SZ's Huffman stage. Samples whose residual exceeds the quantization range
// (or whose reconstruction would violate the bound due to floating-point
// rounding) are escaped as 8-byte literals, exactly like SZ's
// "unpredictable data" path.
type SZ struct {
	eb float64
}

// NewSZ returns an SZ-like codec with absolute error bound eb > 0.
func NewSZ(eb float64) (*SZ, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("compress: sz error bound must be positive and finite, got %g", eb)
	}
	return &SZ{eb: eb}, nil
}

// Name implements Codec.
func (s *SZ) Name() string { return "sz" }

// Lossless implements Codec.
func (s *SZ) Lossless() bool { return false }

// ErrorBound implements Codec.
func (s *SZ) ErrorBound() float64 { return s.eb }

const (
	szMagic = 0x315a5343 // "CSZ1"
	// szEscape marks a literal sample in the code stream. Valid codes are
	// bounded well below it.
	szEscape  = int64(1) << 50
	szMaxCode = int64(1) << 45
)

// Encode implements Codec.
func (s *SZ) Encode(vals []float64) ([]byte, error) {
	if err := checkFinite(vals); err != nil {
		return nil, err
	}
	codes := make([]byte, 0, len(vals))
	lits := make([]byte, 0, 64)
	step := 2 * s.eb

	emitLiteral := func(v float64) {
		codes = binary.AppendVarint(codes, szEscape)
		lits = binary.LittleEndian.AppendUint64(lits, math.Float64bits(v))
	}

	// r0, r1 hold the last two reconstructed samples.
	var r0, r1 float64
	for i, v := range vals {
		var pred float64
		switch i {
		case 0:
			emitLiteral(v)
			r1 = v
			continue
		case 1:
			pred = r1
		default:
			pred = 2*r1 - r0
		}
		code := math.RoundToEven((v - pred) / step)
		recon := pred + code*step
		if math.Abs(code) > float64(szMaxCode) || math.Abs(recon-v) > s.eb || math.IsNaN(recon) || math.IsInf(recon, 0) {
			emitLiteral(v)
			r0, r1 = r1, v
			continue
		}
		codes = binary.AppendVarint(codes, int64(code))
		r0, r1 = r1, recon
	}

	// Assemble payload: lengths + code stream + literal stream, then
	// DEFLATE as the entropy stage.
	payload := make([]byte, 0, len(codes)+len(lits)+16)
	payload = binary.AppendUvarint(payload, uint64(len(codes)))
	payload = binary.AppendUvarint(payload, uint64(len(lits)))
	payload = append(payload, codes...)
	payload = append(payload, lits...)

	var out bytes.Buffer
	hdr := make([]byte, 0, 24)
	hdr = binary.LittleEndian.AppendUint32(hdr, szMagic)
	hdr = binary.AppendUvarint(hdr, uint64(len(vals)))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(s.eb))
	out.Write(hdr)
	if err := deflateTo(&out, payload); err != nil {
		return nil, fmt.Errorf("compress: sz flate: %w", err)
	}
	return out.Bytes(), nil
}

// Decode implements Codec.
func (s *SZ) Decode(data []byte) ([]float64, error) {
	return s.DecodeInto(nil, data)
}

// DecodeInto implements Codec. The inflated payload lives in a pooled
// scratch buffer for the duration of the call.
func (s *SZ) DecodeInto(dst []float64, data []byte) ([]float64, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != szMagic {
		return nil, errors.New("compress: bad sz magic")
	}
	off := 4
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, errors.New("compress: truncated sz header")
	}
	off += n
	if len(data)-off < 8 {
		return nil, errors.New("compress: truncated sz header")
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	scratch := getByteScratch()
	defer putByteScratch(scratch)
	payload, err := inflateAppend((*scratch)[:0], data[off:])
	if err != nil {
		return nil, fmt.Errorf("compress: sz inflate: %w", err)
	}
	*scratch = payload
	p := 0
	codeLen, n := binary.Uvarint(payload[p:])
	if n <= 0 {
		return nil, errors.New("compress: truncated sz payload")
	}
	p += n
	litLen, n := binary.Uvarint(payload[p:])
	if n <= 0 {
		return nil, errors.New("compress: truncated sz payload")
	}
	p += n
	if uint64(len(payload)-p) < codeLen+litLen {
		return nil, errors.New("compress: truncated sz payload")
	}
	codes := payload[p : p+int(codeLen)]
	lits := payload[p+int(codeLen) : p+int(codeLen)+int(litLen)]

	step := 2 * eb
	out := sizeFloats(dst, int(count))
	var r0, r1 float64
	cp, lp := 0, 0
	for i := range out {
		code, n := binary.Varint(codes[cp:])
		if n <= 0 {
			return nil, errors.New("compress: truncated sz code stream")
		}
		cp += n
		var v float64
		if code == szEscape {
			if lp+8 > len(lits) {
				return nil, errors.New("compress: truncated sz literal stream")
			}
			v = math.Float64frombits(binary.LittleEndian.Uint64(lits[lp:]))
			lp += 8
		} else {
			var pred float64
			switch i {
			case 0:
				return nil, errors.New("compress: sz stream must start with a literal")
			case 1:
				pred = r1
			default:
				pred = 2*r1 - r0
			}
			v = pred + float64(code)*step
		}
		out[i] = v
		r0, r1 = r1, v
	}
	return out, nil
}
