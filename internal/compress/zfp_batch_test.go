package compress

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"testing"
)

// The batch decoders (zfp_batch.go) must be observationally identical to the
// retained scalar decoders on EVERY input — valid streams, truncated
// streams, and arbitrary corruption — because the batch path falls back to
// the scalar path mid-stream and the two must agree on where each block
// starts. These targets enforce that parity, and the golden test pins the
// encoder output bytes so decode-side restructuring can never drift the
// on-disk format.

func batchSeedCorpus(f *testing.F, tols []float64) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	for _, tol := range tols {
		z, _ := NewZFP(tol)
		for _, n := range []int{1, 4, 5, 64, 1000} {
			enc, _ := z.Encode(smoothSignal(n, int64(n)))
			f.Add(enc)
			if len(enc) > 3 {
				f.Add(enc[:len(enc)-3]) // truncated tail
			}
			if len(enc) > 20 {
				mid := append([]byte(nil), enc...)
				mid[len(mid)/2] ^= 0xff // corrupt payload
				f.Add(mid)
			}
		}
	}
}

// FuzzZFPBatchVsScalar checks the 1D batch decoder against the scalar
// reference: identical output floats (bitwise) when both succeed, and
// rejection parity — neither may accept an input the other rejects.
func FuzzZFPBatchVsScalar(f *testing.F) {
	batchSeedCorpus(f, []float64{0, 1e-3, 1e-6})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tol := range []float64{0, 1e-3} {
			z, err := NewZFP(tol)
			if err != nil {
				t.Fatal(err)
			}
			batch, bErr := z.DecodeInto(nil, data)
			scalar, sErr := z.decodeIntoScalar(nil, data)
			if (bErr == nil) != (sErr == nil) {
				t.Fatalf("tol=%g rejection mismatch: batch err=%v scalar err=%v", tol, bErr, sErr)
			}
			if bErr != nil {
				continue
			}
			if len(batch) != len(scalar) {
				t.Fatalf("tol=%g length mismatch: batch %d scalar %d", tol, len(batch), len(scalar))
			}
			for i := range batch {
				if math.Float64bits(batch[i]) != math.Float64bits(scalar[i]) {
					t.Fatalf("tol=%g value %d mismatch: batch %v scalar %v", tol, i, batch[i], scalar[i])
				}
			}
		}
	})
}

func batch2DSeedCorpus(f *testing.F, tols []float64) {
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	for _, tol := range tols {
		z, _ := NewZFP2D(tol)
		for _, dim := range [][2]int{{1, 1}, {4, 4}, {5, 3}, {37, 41}} {
			nx, ny := dim[0], dim[1]
			enc, _ := z.Encode(smoothSignal(nx*ny, int64(nx*100+ny)), nx, ny)
			f.Add(enc)
			if len(enc) > 3 {
				f.Add(enc[:len(enc)-3])
			}
			if len(enc) > 20 {
				mid := append([]byte(nil), enc...)
				mid[len(mid)/2] ^= 0xff
				f.Add(mid)
			}
		}
	}
}

// FuzzZFP2DBatchVsScalar is the 2D variant of FuzzZFPBatchVsScalar.
func FuzzZFP2DBatchVsScalar(f *testing.F) {
	batch2DSeedCorpus(f, []float64{0, 1e-3, 1e-6})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tol := range []float64{0, 1e-3} {
			z, err := NewZFP2D(tol)
			if err != nil {
				t.Fatal(err)
			}
			batch, bnx, bny, bErr := z.DecodeInto(nil, data)
			scalar, snx, sny, sErr := z.decodeScalar(data)
			if (bErr == nil) != (sErr == nil) {
				t.Fatalf("tol=%g rejection mismatch: batch err=%v scalar err=%v", tol, bErr, sErr)
			}
			if bErr != nil {
				continue
			}
			if bnx != snx || bny != sny || len(batch) != len(scalar) {
				t.Fatalf("tol=%g shape mismatch: batch %dx%d/%d scalar %dx%d/%d",
					tol, bnx, bny, len(batch), snx, sny, len(scalar))
			}
			for i := range batch {
				if math.Float64bits(batch[i]) != math.Float64bits(scalar[i]) {
					t.Fatalf("tol=%g value %d mismatch: batch %v scalar %v", tol, i, batch[i], scalar[i])
				}
			}
		}
	})
}

// TestZFPEncodedBytesGolden pins the exact encoder output bytes for fixed
// inputs across tolerances. The batch-decode work is decode-side only: any
// change to these hashes means the on-disk format moved and every container
// written by an earlier build would re-read differently.
func TestZFPEncodedBytesGolden(t *testing.T) {
	vals1d := smoothSignal(4099, 7)
	vals2d := smoothSignal(37*41, 9)
	goldens := []struct {
		tol  float64
		dim  string
		n    int
		hash string
	}{
		{0, "1d", 28595, "c4c268788d25e4a4b97fd4c4fe54684985f43622b5e1b9280e7b8627ab8d981c"},
		{0, "2d", 11393, "a73d7a73ba3301a7d36afe0757dd201319ece94e6094ccccee3aeaef2b7a3dfa"},
		{0.001, "1d", 9400, "86fca41b5028a522c28e6680ca963ab8a35649319d27468190ae12b0cbb9f8f0"},
		{0.001, "2d", 3457, "bfe896f4b485b7c4e3014a27eeef0a455ac93556ec422afb8fdd31b559d9c5ea"},
		{1e-06, "1d", 14526, "b8595c5c1882932380339d7bde0d06fd800b3ec8743754c61e8ff14efeefcf3b"},
		{1e-06, "2d", 5487, "424760954d9079b48b6386e57b72a6fac1d50b217f2fabf516f8c9719cd60b17"},
	}
	for _, g := range goldens {
		t.Run(fmt.Sprintf("%s/tol=%g", g.dim, g.tol), func(t *testing.T) {
			var enc []byte
			var err error
			if g.dim == "1d" {
				z, zerr := NewZFP(g.tol)
				if zerr != nil {
					t.Fatal(zerr)
				}
				enc, err = z.Encode(vals1d)
			} else {
				z, zerr := NewZFP2D(g.tol)
				if zerr != nil {
					t.Fatal(zerr)
				}
				enc, err = z.Encode(vals2d, 37, 41)
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(enc) != g.n {
				t.Errorf("encoded length %d, want %d", len(enc), g.n)
			}
			sum := sha256.Sum256(enc)
			if got := hex.EncodeToString(sum[:]); got != g.hash {
				t.Errorf("encoded bytes changed: sha256 %s, want %s", got, g.hash)
			}
		})
	}
}

// TestZFPEncodeAllocs guards the pooled-bitWriter encode diet: the seed
// encoder allocated ~1021 times per chunked op; pooling holds the whole
// encode to a small constant.
func TestZFPEncodeAllocs(t *testing.T) {
	z, err := NewZFP(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	vals := smoothSignal(4096, 3)
	if _, err := z.Encode(vals); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := z.Encode(vals); err != nil {
			t.Fatal(err)
		}
	})
	// One output buffer plus pool slack; the point is it no longer scales
	// with block count (4096 values = 1024 blocks).
	if allocs > 16 {
		t.Fatalf("Encode allocates %v times per op, want <= 16", allocs)
	}
}

// TestZFPDecodeAllocs guards the batch decoder's steady state: decoding into
// a reused buffer must not allocate at all.
func TestZFPDecodeAllocs(t *testing.T) {
	z, err := NewZFP(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := z.Encode(smoothSignal(4096, 3))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4096)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := z.DecodeInto(dst, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto allocates %v times per op, want 0", allocs)
	}
}
