// Package compress provides the floating-point compressors Canopus applies
// to refactored data products (§III-C3 of the paper).
//
// Canopus integrated ZFP and planned SZ and FPC; this package implements
// from-scratch Go codecs with the same algorithmic skeletons:
//
//   - zfp:   fixed-accuracy transform coder — block floating point over
//     4-sample blocks, an orthogonal decorrelating transform, negabinary
//     mapping, and embedded bit-plane coding with significance run-length
//     coding. Honors an absolute error bound on every sample.
//   - sz:    error-bounded predictive coder — linear/quadratic curve-fit
//     prediction with linear-scaling quantization and an entropy-coded
//     (flate) code stream.
//   - fpc:   lossless FCM/DFCM XOR predictor with leading-zero-byte codes.
//   - flate: lossless DEFLATE over the raw IEEE-754 bytes (the general
//     purpose baseline the paper compares against implicitly).
//   - raw:   identity codec, for accounting baselines.
//
// All codecs serialize to self-describing byte slices: Decode never needs
// out-of-band parameters.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec compresses and decompresses []float64 payloads.
type Codec interface {
	// Name is the registry key, e.g. "zfp".
	Name() string
	// Encode compresses vals into a self-describing byte stream.
	Encode(vals []float64) ([]byte, error)
	// Decode reverses Encode.
	Decode(data []byte) ([]float64, error)
	// Lossless reports whether Decode(Encode(x)) == x bit-for-bit.
	Lossless() bool
	// ErrorBound returns the maximum absolute per-sample error a lossy
	// codec may introduce (0 for lossless codecs).
	ErrorBound() float64
}

// ErrNonFinite is returned when a lossy codec receives NaN or ±Inf, which
// have no meaningful error-bounded representation.
var ErrNonFinite = errors.New("compress: input contains non-finite values")

// checkFinite returns ErrNonFinite if any value is NaN or infinite.
func checkFinite(vals []float64) error {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrNonFinite
		}
	}
	return nil
}

// New returns a codec by name. Lossy codecs take tol as their absolute error
// bound; lossless codecs ignore it. Supported names: "zfp", "sz", "fpc",
// "flate", "raw".
func New(name string, tol float64) (Codec, error) {
	switch name {
	case "zfp":
		return NewZFP(tol)
	case "sz":
		return NewSZ(tol)
	case "fpc":
		return NewFPC(16), nil
	case "flate":
		return NewFlate(), nil
	case "raw":
		return Raw{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Names lists the registered codec names.
func Names() []string { return []string{"zfp", "sz", "fpc", "flate", "raw"} }

// floatsToBytes serializes vals as little-endian IEEE-754 doubles.
func floatsToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// bytesToFloats reverses floatsToBytes.
func bytesToFloats(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("compress: byte length %d not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Raw is the identity codec: the encoded form is the raw little-endian
// bytes. It is the honest "no compression" baseline for size accounting.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Lossless implements Codec.
func (Raw) Lossless() bool { return true }

// ErrorBound implements Codec.
func (Raw) ErrorBound() float64 { return 0 }

// Encode implements Codec.
func (Raw) Encode(vals []float64) ([]byte, error) {
	return floatsToBytes(vals), nil
}

// Decode implements Codec.
func (Raw) Decode(data []byte) ([]float64, error) {
	return bytesToFloats(data)
}
