// Package compress provides the floating-point compressors Canopus applies
// to refactored data products (§III-C3 of the paper).
//
// Canopus integrated ZFP and planned SZ and FPC; this package implements
// from-scratch Go codecs with the same algorithmic skeletons:
//
//   - zfp:   fixed-accuracy transform coder — block floating point over
//     4-sample blocks, an orthogonal decorrelating transform, negabinary
//     mapping, and embedded bit-plane coding with significance run-length
//     coding. Honors an absolute error bound on every sample.
//   - sz:    error-bounded predictive coder — linear/quadratic curve-fit
//     prediction with linear-scaling quantization and an entropy-coded
//     (flate) code stream.
//   - fpc:   lossless FCM/DFCM XOR predictor with leading-zero-byte codes.
//   - flate: lossless DEFLATE over the raw IEEE-754 bytes (the general
//     purpose baseline the paper compares against implicitly).
//   - raw:   identity codec, for accounting baselines.
//
// All codecs serialize to self-describing byte slices: Decode never needs
// out-of-band parameters.
//
// Two layers serve the hot read path on top of the plain codecs:
//
//   - DecodeInto on every codec reuses a caller-provided destination slice,
//     so steady-state retrieval loops decode without per-call output
//     allocations; and
//   - the chunked container (chunked.go) frames a product's values as
//     independent per-chunk bitstreams so decode fans out across a worker
//     pool.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Codec compresses and decompresses []float64 payloads.
type Codec interface {
	// Name is the registry key, e.g. "zfp".
	Name() string
	// Encode compresses vals into a self-describing byte stream.
	Encode(vals []float64) ([]byte, error)
	// Decode reverses Encode.
	Decode(data []byte) ([]float64, error)
	// DecodeInto reverses Encode like Decode, but reuses dst's backing
	// array when its capacity suffices, allocating only when the stored
	// value count needs more room. It returns the decoded values
	// (len == stored count); the contents of dst beyond that length are
	// unspecified. DecodeInto(nil, data) is equivalent to Decode(data).
	DecodeInto(dst []float64, data []byte) ([]float64, error)
	// Lossless reports whether Decode(Encode(x)) == x bit-for-bit.
	Lossless() bool
	// ErrorBound returns the maximum absolute per-sample error a lossy
	// codec may introduce (0 for lossless codecs).
	ErrorBound() float64
}

// ErrNonFinite is returned when a lossy codec receives NaN or ±Inf, which
// have no meaningful error-bounded representation.
var ErrNonFinite = errors.New("compress: input contains non-finite values")

// checkFinite returns ErrNonFinite if any value is NaN or infinite.
func checkFinite(vals []float64) error {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrNonFinite
		}
	}
	return nil
}

// New returns a codec by name. Lossy codecs take tol as their absolute error
// bound; lossless codecs ignore it. Supported names: "zfp", "sz", "fpc",
// "flate", "raw".
func New(name string, tol float64) (Codec, error) {
	switch name {
	case "zfp":
		return NewZFP(tol)
	case "sz":
		return NewSZ(tol)
	case "fpc":
		return NewFPC(16), nil
	case "flate":
		return NewFlate(), nil
	case "raw":
		return Raw{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// Names lists the registered codec names.
func Names() []string { return []string{"zfp", "sz", "fpc", "flate", "raw"} }

// sizeFloats returns dst resized to n values, reusing its backing array when
// possible. It is the single growth policy behind every DecodeInto.
func sizeFloats(dst []float64, n int) []float64 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

// byteScratchPool recycles the transient byte buffers the codecs burn
// through on every call: serialized IEEE-754 images on the flate encode
// path and inflated payloads on the sz/flate decode paths. Buffers are
// pooled as pointers to avoid an allocation per Put.
var byteScratchPool = sync.Pool{
	New: func() any {
		s := make([]byte, 0, 64<<10)
		return &s
	},
}

func getByteScratch() *[]byte  { return byteScratchPool.Get().(*[]byte) }
func putByteScratch(s *[]byte) { *s = (*s)[:0]; byteScratchPool.Put(s) }

// floatsToBytes serializes vals as little-endian IEEE-754 doubles.
func floatsToBytes(vals []float64) []byte {
	return floatsToBytesInto(nil, vals)
}

// floatsToBytesInto serializes vals into dst's backing array when it has
// room, so encode paths that only need the bytes transiently (flate) can
// feed it a pooled scratch buffer.
func floatsToBytesInto(dst []byte, vals []float64) []byte {
	n := 8 * len(vals)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]byte, n)
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
	return dst
}

// bytesToFloats reverses floatsToBytes.
func bytesToFloats(data []byte) ([]float64, error) {
	return bytesToFloatsInto(nil, data)
}

// bytesToFloatsInto reverses floatsToBytes into dst's backing array when its
// capacity suffices — the allocation-free half of every lossless DecodeInto.
func bytesToFloatsInto(dst []float64, data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("compress: byte length %d not a multiple of 8", len(data))
	}
	out := sizeFloats(dst, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Raw is the identity codec: the encoded form is the raw little-endian
// bytes. It is the honest "no compression" baseline for size accounting.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Lossless implements Codec.
func (Raw) Lossless() bool { return true }

// ErrorBound implements Codec.
func (Raw) ErrorBound() float64 { return 0 }

// Encode implements Codec.
func (Raw) Encode(vals []float64) ([]byte, error) {
	return floatsToBytes(vals), nil
}

// Decode implements Codec.
func (Raw) Decode(data []byte) ([]float64, error) {
	return bytesToFloats(data)
}

// DecodeInto implements Codec.
func (Raw) DecodeInto(dst []float64, data []byte) ([]float64, error) {
	return bytesToFloatsInto(dst, data)
}
