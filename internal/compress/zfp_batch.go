package compress

import (
	"encoding/binary"
	"math"
	"math/bits"
)

// Batch bit-plane decoding for the zfp-like coders (1D and 2D).
//
// The scalar decoders in zfp.go / zfp2d.go walk the embedded bit-plane
// stream one bit at a time: every group-test bit, every zero of a
// significance run, and every raw coefficient bit is a readBit call with a
// branchy byte-sized refill behind it, and the reader state round-trips
// through memory on every call. That per-bit control flow — not the
// arithmetic — is what pinned zfp decode near 75 MB/s while raw moved GB/s.
//
// The batch decoders below keep the stream format bit-identical and decode
// many blocks per call with the bit buffer, bit count, and byte position
// held in locals (registers) for the whole payload. Three mechanisms do the
// work (DESIGN.md §14):
//
//  1. Word-level bitstream reads: the 64-bit bit buffer refills with one
//     unaligned load per ~6 bytes consumed, and a refill at a block or
//     plane boundary guarantees the whole unit — 19 header bits, or a
//     worst-case valid plane (12 bits for 1D, 33 for 2D) — decodes out of
//     the register with no further bounds checks.
//  2. Branchless significance runs: a run of zeros terminated by a one is
//     counted with a single TrailingZeros64 on the buffered word and
//     consumed in one shift, instead of one readBit per zero. Once every
//     coefficient of a block is significant, each remaining plane is a
//     single masked extract.
//  3. Table-driven plane accumulation: each decoded plane is spread into
//     per-coefficient bit lanes through a small table (16-entry for the
//     four 1D lanes, 256-entry twice for the sixteen 2D lanes) and ORed
//     into one accumulator word — one shift-or per plane for the whole
//     block — which is flushed into the per-coefficient negabinary words
//     every lane-width planes.
//
// Rare shapes — the last few bytes of a stream, or corrupt streams that
// push the significance prefix past the block width or a run past the
// buffered word — rewind to the block boundary and re-decode that one block
// with the retained scalar decoder, so batch and scalar decode are bit-exact
// on *arbitrary* input: valid, truncated, or corrupt. FuzzZFPBatchVsScalar
// and FuzzZFP2DBatchVsScalar enforce exactly that.

// spread4 maps a 4-bit plane to four 16-bit lanes: bit i of the index lands
// at bit 16*i. spread8 maps an 8-bit half-plane of the 2D coder to eight
// 4-bit lanes: bit i lands at bit 4*i.
var (
	spread4 = func() (t [16]uint64) {
		for x := range t {
			for i := 0; i < 4; i++ {
				t[x] |= uint64(x>>i&1) << (16 * i)
			}
		}
		return
	}()
	spread8 = func() (t [256]uint32) {
		for x := range t {
			for i := 0; i < 8; i++ {
				t[x] |= uint32(x>>i&1) << (4 * i)
			}
		}
		return
	}()
)

// compactEven gathers the even-position bits of x into the low half — the
// Morton-decode half-shuffle. The s==1 batch mode uses it to peel every DC
// bit out of a run of event-free planes in one pass instead of one shift
// per plane.
func compactEven(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return x
}

// zfpPlaneCutoff hoists minPlaneFor's tolerance half out of the per-block
// loop: minPlane = clamp(bias - e), with the Ilogb computed once per stream
// instead of once per block. guard is 2 for the 1D coder, 3 for 2D
// (minPlane2DFor's extra guard bit).
type zfpPlaneCutoff struct {
	bias   int
	hasTol bool
}

func newPlaneCutoff(tol float64, guard int) zfpPlaneCutoff {
	if tol == 0 {
		return zfpPlaneCutoff{}
	}
	return zfpPlaneCutoff{bias: math.Ilogb(tol) + zfpQ - guard, hasTol: true}
}

func (c zfpPlaneCutoff) minPlane(e int) int {
	if !c.hasTol {
		return 0
	}
	p := c.bias - e
	if p < 0 {
		p = 0
	}
	if p > 63 {
		p = 64
	}
	return p
}

// invScale returns math.Ldexp(1, e-zfpQ)/div for a power-of-two div,
// constructing the float directly from its biased exponent when the result
// is a normal number — Ldexp's normalize/clamp path costs ~5% of a decode.
// logDiv is log2(div). Out-of-range exponents (only reachable through
// corrupt headers) take the exact scalar expression so batch and scalar
// decoders keep bit-identical outputs everywhere.
func invScale(e, logDiv int) float64 {
	if exp := e - zfpQ - logDiv; exp >= -1022 && e-zfpQ <= 1023 {
		return math.Float64frombits(uint64(exp+1023) << 52)
	}
	return math.Ldexp(1, e-zfpQ) / float64(int64(1)<<logDiv)
}

// zfpDecodeBlocks decodes the whole 1D payload behind r into out (length =
// stored count; the tail block's padding samples are decoded and discarded).
// It is the production decode path behind ZFP.DecodeInto.
func zfpDecodeBlocks(r *bitReader, tol float64, out []float64) error {
	cut := newPlaneCutoff(tol, 2)
	buf := r.buf
	pos, cur, n := r.pos, r.cur, r.n

	nOut := len(out)
	for i := 0; i < nOut; i += 4 {
		// Refill so the block header (1 + 12 + 6 bits) and the first plane
		// decode without further checks.
		if n <= 56 && pos+8 <= len(buf) {
			cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
			k := (63 - n) >> 3
			pos += int(k)
			n += k * 8
		}
		// Block-boundary snapshot the scalar fallback rewinds to. The
		// refill above moved bytes into the register but consumed nothing,
		// so the snapshot's logical bit offset equals the block start.
		sPos, sCur, sN := pos, cur, n
		if n >= 19 {
			ok := true
			if cur&1 == 0 { // zero block: one bit, the smooth-delta fast path
				cur >>= 1
				n--
				end := i + 4
				if end > nOut {
					end = nOut
				}
				for j := i; j < end; j++ {
					out[j] = 0
				}
				continue
			}
			e := int(cur>>1&0xfff) - 2048
			maxPlane := int(cur >> 13 & 0x3f)
			cur >>= 19
			n -= 19
			minPlane := cut.minPlane(e)

			var u0, u1, u2, u3 uint64
			var acc uint64
			accPlanes := uint(0)
			s := uint(0) // significance prefix
			p := maxPlane
		planes:
			for p >= minPlane {
				if s == 1 {
					// DC-only batch mode: on smooth data most planes have
					// exactly one significant coefficient and no new
					// significance, i.e. they are [dc bit][group 0] pairs.
					// Scan the buffered word's odd (group) bits for the
					// next significance event and peel all the event-free
					// planes before it in one pass: their DC bits sit at
					// even positions and compactEven gathers them together.
					for {
						if n < 56 && pos+8 <= len(buf) {
							cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
							k := (63 - n) >> 3
							pos += int(k)
							n += k * 8
						}
						avail := int(n >> 1)
						if rem := p - minPlane + 1; avail > rem {
							avail = rem
						}
						if avail == 0 {
							ok = false // tail: scalar finishes the block
							break planes
						}
						k := avail
						if w := cur & 0xaaaaaaaaaaaaaaaa; w != 0 {
							if t := bits.TrailingZeros64(w) >> 1; t < k {
								k = t
							}
						}
						if k > 0 {
							// Flush the partial accumulator so the lanes
							// can take direct appends, then append the k
							// DC bits (reversed: first peeled plane is the
							// most significant) and advance the AC lanes
							// by k zero planes.
							m := uint64(1)<<accPlanes - 1
							u0 = u0<<accPlanes | acc&m
							u1 = u1<<accPlanes | acc>>16&m
							u2 = u2<<accPlanes | acc>>32&m
							u3 = u3<<accPlanes | acc>>48&m
							acc, accPlanes = 0, 0
							kk := uint(k)
							dc := compactEven(cur & (1<<(2*kk) - 1))
							u0 = u0<<kk | bits.Reverse64(dc)>>(64-kk)
							u1 <<= kk
							u2 <<= kk
							u3 <<= kk
							cur >>= 2 * kk
							n -= 2 * kk
							p -= k
							if p < minPlane {
								break planes
							}
						}
						if k < avail {
							break // significance event at plane p: general path
						}
					}
				}
				// General single-plane path: a worst-case valid plane is 12
				// bits, so one refill covers it.
				if n < 14 {
					if n <= 56 && pos+8 <= len(buf) {
						cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
						k := (63 - n) >> 3
						pos += int(k)
						n += k * 8
					} else {
						ok = false // stream tail: scalar finishes the block
						break
					}
				}
				// Raw prefix: already-significant coefficients emit plane
				// bits verbatim, then the group/run section.
				x := cur & (1<<s - 1)
				cur >>= s
				n -= s
				for s < 4 {
					g := cur & 1
					cur >>= 1
					n--
					if g == 0 {
						break
					}
					// Significance run: zeros up to the terminating one,
					// counted with one TrailingZeros64. A valid run fits
					// the refill guarantee; an empty buffered word means
					// corrupt or tail.
					if cur == 0 {
						ok = false
						break
					}
					tz := uint(bits.TrailingZeros64(cur))
					cur >>= tz + 1
					n -= tz + 1
					x |= 1 << (s + tz)
					s += tz + 1
				}
				if !ok || s > 4 {
					ok = false // corrupt prefix: scalar owns the semantics
					break
				}
				acc = acc<<1 | spread4[x&15]
				accPlanes++
				if accPlanes == 16 {
					u0 = u0<<16 | acc&0xffff
					u1 = u1<<16 | acc>>16&0xffff
					u2 = u2<<16 | acc>>32&0xffff
					u3 = u3<<16 | acc>>48&0xffff
					acc = 0
					accPlanes = 0
				}
				p--
				if s == 4 && p >= minPlane {
					// Every coefficient is significant: each remaining
					// plane is exactly 4 raw bits (the group loop is dead).
					// Drain them in unchecked nibble batches — as many as
					// the buffered word and the accumulator allow per trip.
					rem := p - minPlane + 1
					for rem > 0 {
						if n < 56 && pos+8 <= len(buf) {
							cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
							k := (63 - n) >> 3
							pos += int(k)
							n += k * 8
						}
						b := int(n >> 2)
						if b > rem {
							b = rem
						}
						if c := int(16 - accPlanes); b > c {
							b = c
						}
						if b == 0 {
							ok = false // tail: scalar finishes the block
							break
						}
						rem -= b
						n -= uint(b) * 4
						for k := 0; k < b; k++ {
							acc = acc<<1 | spread4[cur&15]
							cur >>= 4
						}
						accPlanes += uint(b)
						if accPlanes == 16 {
							u0 = u0<<16 | acc&0xffff
							u1 = u1<<16 | acc>>16&0xffff
							u2 = u2<<16 | acc>>32&0xffff
							u3 = u3<<16 | acc>>48&0xffff
							acc = 0
							accPlanes = 0
						}
					}
					break
				}
			}
			if ok {
				m := uint64(1)<<accPlanes - 1
				u0 = u0<<accPlanes | acc&m
				u1 = u1<<accPlanes | acc>>16&m
				u2 = u2<<accPlanes | acc>>32&m
				u3 = u3<<accPlanes | acc>>48&m
				sh := uint(minPlane)
				c0 := fromNegabinary(u0 << sh)
				c1 := fromNegabinary(u1 << sh)
				c2 := fromNegabinary(u2 << sh)
				c3 := fromNegabinary(u3 << sh)
				inv := invScale(e, 2)
				if i+4 <= nOut {
					o := (*[4]float64)(out[i : i+4])
					o[0] = float64(c0+c1+c2+c3) * inv
					o[1] = float64(c0+c1-c2-c3) * inv
					o[2] = float64(c0-c1-c2+c3) * inv
					o[3] = float64(c0-c1+c2-c3) * inv
				} else {
					blk := [4]float64{
						float64(c0+c1+c2+c3) * inv,
						float64(c0+c1-c2-c3) * inv,
						float64(c0-c1-c2+c3) * inv,
						float64(c0-c1+c2-c3) * inv,
					}
					copy(out[i:], blk[:])
				}
				continue
			}
		}
		// Fallback: rewind to the block boundary and let the scalar decoder
		// consume this one block (stream tail, or a corrupt shape whose
		// semantics the scalar path defines).
		r.pos, r.cur, r.n = sPos, sCur, sN
		f, err := decodeZFPBlock(r, tol)
		if err != nil {
			return err
		}
		pos, cur, n = r.pos, r.cur, r.n
		copy(out[i:], f[:])
	}
	r.pos, r.cur, r.n = pos, cur, n
	return nil
}

// zfp2dDecodeBlocks decodes the whole 4x4-tiled grid payload behind r into
// out (nx*ny row-major values), the production path behind ZFP2D.DecodeInto.
// Structure matches zfpDecodeBlocks with sixteen 4-bit accumulator lanes
// (flushed every 4 planes through the spread8 table) and the separable
// inverse transform from the scalar decoder.
func zfp2dDecodeBlocks(r *bitReader, tol float64, out []float64, nx, ny int) error {
	cut := newPlaneCutoff(tol, 3)
	buf := r.buf
	pos, cur, n := r.pos, r.cur, r.n

	var block [16]float64
	var u [16]uint64
	for by := 0; by < ny; by += 4 {
		for bx := 0; bx < nx; bx += 4 {
			if n <= 56 && pos+8 <= len(buf) {
				cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
				k := (63 - n) >> 3
				pos += int(k)
				n += k * 8
			}
			sPos, sCur, sN := pos, cur, n
			if n >= 19 {
				ok := true
				if cur&1 == 0 {
					cur >>= 1
					n--
					for j := range block {
						block[j] = 0
					}
					scatter2DBlock(out, &block, nx, ny, bx, by)
					continue
				}
				e := int(cur>>1&0xfff) - 2048
				maxPlane := int(cur >> 13 & 0x3f)
				cur >>= 19
				n -= 19
				minPlane := cut.minPlane(e)

				for j := range u {
					u[j] = 0
				}
				var acc uint64
				accPlanes := uint(0)
				s := uint(0)
				for p := maxPlane; p >= minPlane; p-- {
					// A worst-case valid plane is raw + group bits + run
					// bits <= 33 bits; one word refill covers it. Near the
					// stream tail the word refill may be unavailable —
					// scalar finishes the block.
					if n < 34 {
						if n <= 56 && pos+8 <= len(buf) {
							cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
							k := (63 - n) >> 3
							pos += int(k)
							n += k * 8
						} else {
							ok = false
							break
						}
					}
					x := cur & (1<<s - 1)
					cur >>= s
					n -= s
					for s < 16 {
						g := cur & 1
						cur >>= 1
						n--
						if g == 0 {
							break
						}
						if cur == 0 {
							ok = false
							break
						}
						tz := uint(bits.TrailingZeros64(cur))
						cur >>= tz + 1
						n -= tz + 1
						x |= 1 << (s + tz)
						s += tz + 1
					}
					if !ok || s > 16 {
						ok = false
						break
					}
					acc = acc<<1 | uint64(spread8[x&0xff]) | uint64(spread8[x>>8&0xff])<<32
					accPlanes++
					if accPlanes == 4 {
						for j := range u {
							u[j] = u[j]<<4 | acc>>(4*uint(j))&0xf
						}
						acc = 0
						accPlanes = 0
					}
					if s == 16 && p > minPlane {
						// All sixteen coefficients significant: remaining
						// planes are 16 raw bits each; drain in unchecked
						// batches (mirrors the 1D nibble mode).
						rem := p - minPlane
						for rem > 0 {
							if n < 56 && pos+8 <= len(buf) {
								cur |= binary.LittleEndian.Uint64(buf[pos:]) << n
								k := (63 - n) >> 3
								pos += int(k)
								n += k * 8
							}
							b := int(n >> 4)
							if b > rem {
								b = rem
							}
							if c := int(4 - accPlanes); b > c {
								b = c
							}
							if b == 0 {
								ok = false
								break
							}
							rem -= b
							n -= uint(b) * 16
							for k := 0; k < b; k++ {
								acc = acc<<1 | uint64(spread8[cur&0xff]) | uint64(spread8[cur>>8&0xff])<<32
								cur >>= 16
							}
							accPlanes += uint(b)
							if accPlanes == 4 {
								for j := range u {
									u[j] = u[j]<<4 | acc>>(4*uint(j))&0xf
								}
								acc = 0
								accPlanes = 0
							}
						}
						break
					}
				}
				if ok {
					m := uint64(1)<<accPlanes - 1
					sh := uint(minPlane)
					var q [16]int64
					for j := range u {
						q[zigzag16[j]] = fromNegabinary((u[j]<<accPlanes | acc>>(4*uint(j))&m) << sh)
					}
					// Inverse separable transform: columns, then rows (same
					// order as the scalar decoder).
					var col [4]int64
					for cidx := 0; cidx < 4; cidx++ {
						for row := 0; row < 4; row++ {
							col[row] = q[4*row+cidx]
						}
						invHadamard4(col[:])
						for row := 0; row < 4; row++ {
							q[4*row+cidx] = col[row]
						}
					}
					for row := 0; row < 4; row++ {
						invHadamard4(q[4*row : 4*row+4])
					}
					inv := invScale(e, 4)
					for j := range block {
						block[j] = float64(q[j]) * inv
					}
					scatter2DBlock(out, &block, nx, ny, bx, by)
					continue
				}
			}
			r.pos, r.cur, r.n = sPos, sCur, sN
			if err := decodeZFP2DBlock(r, tol, &block); err != nil {
				return err
			}
			pos, cur, n = r.pos, r.cur, r.n
			scatter2DBlock(out, &block, nx, ny, bx, by)
		}
	}
	r.pos, r.cur, r.n = pos, cur, n
	return nil
}

// scatter2DBlock writes one decoded 4x4 block into the row-major grid,
// clipping edge blocks.
func scatter2DBlock(out []float64, block *[16]float64, nx, ny, bx, by int) {
	if bx+4 <= nx && by+4 <= ny {
		for j := 0; j < 4; j++ {
			copy(out[(by+j)*nx+bx:], block[j*4:j*4+4])
		}
		return
	}
	for j := 0; j < 4 && by+j < ny; j++ {
		for i := 0; i < 4 && bx+i < nx; i++ {
			out[(by+j)*nx+bx+i] = block[j*4+i]
		}
	}
}
