package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// FPC is a lossless double-precision compressor modeled on FPC (Burtscher &
// Ratanaworabhan, IEEE ToC 2009), which the paper lists as a planned
// Canopus integration and which represents the "lossless compression
// achieves < 2x on scientific data" class discussed in §V.
//
// Two hash-table value predictors run in parallel — an FCM (finite context
// method) over recent values and a DFCM (differential FCM) over recent
// strides. Each double is XORed with the closer prediction; the result has
// many leading zero bytes when prediction is good. A 4-bit code per value
// (1 selector bit + 3-bit leading-zero-byte count) plus the residual bytes
// form the output.
type FPC struct {
	tableLog uint // log2 of predictor table size
}

// NewFPC returns an FPC codec with 2^tableLog-entry predictor tables.
// tableLog is clamped to [4, 24]; 16 matches the original paper's defaults.
func NewFPC(tableLog uint) *FPC {
	if tableLog < 4 {
		tableLog = 4
	}
	if tableLog > 24 {
		tableLog = 24
	}
	return &FPC{tableLog: tableLog}
}

// Name implements Codec.
func (f *FPC) Name() string { return "fpc" }

// Lossless implements Codec.
func (f *FPC) Lossless() bool { return true }

// ErrorBound implements Codec.
func (f *FPC) ErrorBound() float64 { return 0 }

const fpcMagic = 0x31435046 // "FPC1"

// fpcPredictor holds the shared FCM/DFCM state. Encode and Decode must
// update it identically so predictions match.
type fpcPredictor struct {
	fcm, dfcm    []uint64
	fhash, dhash uint64
	last         uint64
	mask         uint64
	tableLog     uint
}

func newFPCPredictor(tableLog uint) *fpcPredictor {
	size := uint64(1) << tableLog
	return &fpcPredictor{
		fcm:      make([]uint64, size),
		dfcm:     make([]uint64, size),
		mask:     size - 1,
		tableLog: tableLog,
	}
}

// reset clears all predictor state so a pooled predictor behaves exactly
// like a fresh one. Zeroing the tables is far cheaper than allocating them:
// at the default tableLog the two tables are 1 MiB, which is why predictor
// reuse dominates the fpc decode allocation profile.
func (p *fpcPredictor) reset() {
	clear(p.fcm)
	clear(p.dfcm)
	p.fhash, p.dhash, p.last = 0, 0, 0
}

// fpcPredictorPool recycles predictor tables across Encode/Decode calls.
// sync.Pool is unkeyed, so a pooled predictor whose tableLog does not match
// the request is dropped and a fresh one allocated; in practice a process
// uses one tableLog throughout.
var fpcPredictorPool = sync.Pool{}

func getFPCPredictor(tableLog uint) *fpcPredictor {
	if v := fpcPredictorPool.Get(); v != nil {
		p := v.(*fpcPredictor)
		if p.tableLog == tableLog {
			p.reset()
			return p
		}
	}
	return newFPCPredictor(tableLog)
}

func putFPCPredictor(p *fpcPredictor) { fpcPredictorPool.Put(p) }

// predict returns both predictions for the next value.
func (p *fpcPredictor) predict() (fcmPred, dfcmPred uint64) {
	return p.fcm[p.fhash], p.dfcm[p.dhash] + p.last
}

// update advances the predictor state after observing actual value bits.
func (p *fpcPredictor) update(actual uint64) {
	p.fcm[p.fhash] = actual
	p.fhash = ((p.fhash << 6) ^ (actual >> 48)) & p.mask
	delta := actual - p.last
	p.dfcm[p.dhash] = delta
	p.dhash = ((p.dhash << 2) ^ (delta >> 40)) & p.mask
	p.last = actual
}

// lzbCode maps a leading-zero-byte count (0..8) to FPC's 3-bit code. A count
// of exactly 4 is encoded as 3 (one residual byte wasted), matching the
// original format which steals that code point for counts 5..8.
func lzbCode(lzb int) (code uint8, coded int) {
	if lzb == 4 {
		return 3, 3
	}
	if lzb >= 5 {
		return uint8(lzb - 1), lzb
	}
	return uint8(lzb), lzb
}

func codeLZB(code uint8) int {
	if code >= 4 {
		return int(code) + 1
	}
	return int(code)
}

func leadingZeroBytes(x uint64) int {
	n := 0
	for n < 8 && (x>>(56-8*uint(n)))&0xff == 0 {
		n++
	}
	return n
}

// Encode implements Codec.
func (f *FPC) Encode(vals []float64) ([]byte, error) {
	out := make([]byte, 0, 8+len(vals)*5)
	out = binary.LittleEndian.AppendUint32(out, fpcMagic)
	out = binary.AppendUvarint(out, uint64(len(vals)))
	out = append(out, byte(f.tableLog))

	headers := make([]byte, 0, (len(vals)+1)/2)
	residuals := make([]byte, 0, len(vals)*4)
	pred := getFPCPredictor(f.tableLog)
	defer putFPCPredictor(pred)

	var pendingNibble uint8
	havePending := false
	for _, v := range vals {
		bits := math.Float64bits(v)
		fcmPred, dfcmPred := pred.predict()
		xf := bits ^ fcmPred
		xd := bits ^ dfcmPred
		var sel uint8
		var xor uint64
		if leadingZeroBytes(xd) > leadingZeroBytes(xf) {
			sel, xor = 1, xd
		} else {
			sel, xor = 0, xf
		}
		code, coded := lzbCode(leadingZeroBytes(xor))
		nib := sel<<3 | code
		if havePending {
			headers = append(headers, pendingNibble<<4|nib)
			havePending = false
		} else {
			pendingNibble = nib
			havePending = true
		}
		for i := 8 - coded - 1; i >= 0; i-- {
			residuals = append(residuals, byte(xor>>(8*uint(i))))
		}
		pred.update(bits)
	}
	if havePending {
		headers = append(headers, pendingNibble<<4)
	}
	out = binary.AppendUvarint(out, uint64(len(headers)))
	out = append(out, headers...)
	out = append(out, residuals...)
	return out, nil
}

// Decode implements Codec.
func (f *FPC) Decode(data []byte) ([]float64, error) {
	return f.DecodeInto(nil, data)
}

// DecodeInto implements Codec. Predictor tables come from a pool, so a warm
// decode allocates nothing beyond a possibly-growing dst.
func (f *FPC) DecodeInto(dst []float64, data []byte) ([]float64, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != fpcMagic {
		return nil, errors.New("compress: bad fpc magic")
	}
	off := 4
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, errors.New("compress: truncated fpc header")
	}
	off += n
	if off >= len(data) {
		return nil, errors.New("compress: truncated fpc header")
	}
	tableLog := uint(data[off])
	off++
	if tableLog < 4 || tableLog > 24 {
		return nil, fmt.Errorf("compress: invalid fpc table log %d", tableLog)
	}
	hdrLen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, errors.New("compress: truncated fpc header")
	}
	off += n
	if uint64(len(data)-off) < hdrLen || hdrLen < (count+1)/2 {
		return nil, errors.New("compress: truncated fpc headers")
	}
	headers := data[off : off+int(hdrLen)]
	residuals := data[off+int(hdrLen):]

	pred := getFPCPredictor(tableLog)
	defer putFPCPredictor(pred)
	out := sizeFloats(dst, int(count))
	rp := 0
	for i := uint64(0); i < count; i++ {
		hb := headers[i/2]
		var nib uint8
		if i%2 == 0 {
			nib = hb >> 4
		} else {
			nib = hb & 0x0f
		}
		sel := nib >> 3
		coded := codeLZB(nib & 7)
		nres := 8 - coded
		if rp+nres > len(residuals) {
			return nil, errors.New("compress: truncated fpc residuals")
		}
		var xor uint64
		for j := 0; j < nres; j++ {
			xor = xor<<8 | uint64(residuals[rp])
			rp++
		}
		fcmPred, dfcmPred := pred.predict()
		var bits uint64
		if sel == 1 {
			bits = xor ^ dfcmPred
		} else {
			bits = xor ^ fcmPred
		}
		out[i] = math.Float64frombits(bits)
		pred.update(bits)
	}
	return out, nil
}
