// Package repro is a from-scratch Go reproduction of "Canopus: A Paradigm
// Shift Towards Elastic Extreme-Scale Data Analytics on HPC Storage"
// (CLUSTER 2017).
//
// The system lives under internal/: the core library in internal/core, one
// package per substrate (mesh, decimate, delta, compress, storage, bp,
// adios, analysis, sim), and the experiment harness in internal/bench.
// Executables are under cmd/, runnable examples under examples/. See
// README.md for a tour, DESIGN.md for the system inventory and experiment
// index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
