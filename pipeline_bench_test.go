package repro

// BenchmarkPipelineWriteRead measures the concurrent refactor/retrieve
// engine end to end — decimate, delta, compress, tier store, then a
// full-accuracy retrieval — at workers=1 (exact serial order) versus
// workers=NumCPU. Stored products are byte-identical at every worker
// count (see TestWriteWorkersByteIdentical), so this isolates the
// wall-clock effect of the engine's worker pool.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/storage"
)

func pipelineDataset(nx int) *core.Dataset {
	m := mesh.Rect(nx, nx, 1, 1)
	data := make([]float64, m.NumVerts())
	for i, v := range m.Verts {
		data[i] = math.Sin(5*v.X)*math.Cos(4*v.Y) + 0.3*v.X*v.Y
	}
	return &core.Dataset{Name: "dpot", Mesh: m, Data: data}
}

func benchPipeline(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	ctx := context.Background()
	// 192x192 ≈ 37k vertices: the scale of one XGC1 rank partition in the
	// paper's Titan runs (§IV), large enough that per-level compress and
	// per-chunk decompress units dominate the pool.
	ds := pipelineDataset(192)
	opts := core.Options{Levels: 4, Chunks: 8, RelTolerance: 1e-4, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aio := adios.NewIO(storage.TitanTwoTier(0), nil)
		if _, err := core.Write(ctx, aio, ds, opts); err != nil {
			b.Fatal(err)
		}
		rd, err := core.OpenReader(ctx, aio, "dpot")
		if err != nil {
			b.Fatal(err)
		}
		rd.SetWorkers(workers)
		if _, err := rd.Retrieve(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineWriteRead(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchPipeline(b, 1) })
	b.Run(fmt.Sprintf("workers=%d", runtime.NumCPU()), func(b *testing.B) {
		benchPipeline(b, runtime.NumCPU())
	})
}
