package repro

// BenchmarkRangedRead measures the selective read path: retrieval of a
// growing region of one stored multi-level container. Because every fetch is
// a true ranged read, both the bytes moved out of the storage backend
// (reported as real-bytes/op) and the allocations per retrieval scale with
// the extents the region needs, not with the container size — the
// O(extents) memory contract documented in DESIGN.md.

import (
	"context"
	"testing"

	"repro/internal/adios"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/storage"
)

func benchRangedRead(b *testing.B, frac float64) {
	b.Helper()
	ctx := context.Background()
	aio := adios.NewIO(storage.TitanTwoTier(0), nil)
	ds := pipelineDataset(192)
	if _, err := core.Write(ctx, aio, ds, core.Options{Levels: 4, Chunks: 8, RelTolerance: 1e-4}); err != nil {
		b.Fatal(err)
	}
	rd, err := core.OpenReader(ctx, aio, "dpot")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var modeled, real int64
	for i := 0; i < b.N; i++ {
		if frac >= 1 {
			v, err := rd.Retrieve(ctx, 0)
			if err != nil {
				b.Fatal(err)
			}
			modeled, real = v.Timings.IOBytes, v.Timings.IORealBytes
		} else {
			v, err := rd.RetrieveRegion(ctx, 0, 0, 0, frac, frac)
			if err != nil {
				b.Fatal(err)
			}
			modeled, real = v.Timings.IOBytes, v.Timings.IORealBytes
		}
	}
	b.ReportMetric(float64(modeled), "modeled-bytes/op")
	b.ReportMetric(float64(real), "real-bytes/op")
}

// benchRangedReadTileCache measures the full retrieval with a decoded-tile
// cache attached. hot serves every tile from cache (the repeated-analytics
// steady state: decompress drops out of the critical path, bytes moved stay
// identical); cold invalidates the cache every iteration, pricing the decode
// plus the cache's bookkeeping overhead.
func benchRangedReadTileCache(b *testing.B, hot bool) {
	b.Helper()
	ctx := context.Background()
	tc := compress.NewTileCache(256 << 20)
	aio := adios.NewIO(storage.TitanTwoTier(0), nil).SetTileCache(tc)
	ds := pipelineDataset(192)
	if _, err := core.Write(ctx, aio, ds, core.Options{Levels: 4, Chunks: 8, RelTolerance: 1e-4}); err != nil {
		b.Fatal(err)
	}
	rd, err := core.OpenReader(ctx, aio, "dpot")
	if err != nil {
		b.Fatal(err)
	}
	keys := aio.H.Keys()
	if _, err := rd.Retrieve(ctx, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var modeled, real int64
	var decompress float64
	for i := 0; i < b.N; i++ {
		if !hot {
			b.StopTimer()
			for _, k := range keys {
				tc.Invalidate(k)
			}
			b.StartTimer()
		}
		v, err := rd.Retrieve(ctx, 0)
		if err != nil {
			b.Fatal(err)
		}
		modeled, real = v.Timings.IOBytes, v.Timings.IORealBytes
		decompress = v.Timings.DecompressSeconds
	}
	b.ReportMetric(float64(modeled), "modeled-bytes/op")
	b.ReportMetric(float64(real), "real-bytes/op")
	b.ReportMetric(decompress*1e9, "decompress-ns/op")
}

func BenchmarkRangedRead(b *testing.B) {
	b.Run("region=0.12", func(b *testing.B) { benchRangedRead(b, 0.12) })
	b.Run("region=0.25", func(b *testing.B) { benchRangedRead(b, 0.25) })
	b.Run("region=0.50", func(b *testing.B) { benchRangedRead(b, 0.50) })
	b.Run("full", func(b *testing.B) { benchRangedRead(b, 1) })
	b.Run("full/tilecache=cold", func(b *testing.B) { benchRangedReadTileCache(b, false) })
	b.Run("full/tilecache=hot", func(b *testing.B) { benchRangedReadTileCache(b, true) })
}
