// Campaign demonstrates the data management the paper defers to future
// work (§IV-B): a multi-timestep simulation campaign whose base datasets
// cannot all fit in the fast tier, so the middleware must migrate and evict
// — "we believe data migration and eviction will play an integral part,
// which needs to be developed in Canopus". This repository develops it
// (storage.Hierarchy.Promote / Demote / EnsureRoom with LRU eviction), and
// this example drives it with a realistic access pattern: a scientist
// repeatedly explores a handful of recent timesteps while old ones go cold.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	// A fast tier deliberately too small for the whole campaign.
	h := storage.NewHierarchy(
		&storage.Tier{Name: "tmpfs", Capacity: 96 << 10, ReadBandwidth: 6e9, WriteBandwidth: 6e9, LatencySeconds: 2e-6},
		&storage.Tier{Name: "lustre", ReadBandwidth: 1e7, WriteBandwidth: 1e7, LatencySeconds: 1e-3},
	)
	aio := adios.NewIO(h, nil)

	// Write an 8-timestep campaign. Capacity pressure makes later bases
	// bypass tmpfs on their own (the paper's §III-D rule).
	const steps = 8
	for s := 0; s < steps; s++ {
		res := sim.XGC1(sim.XGC1Config{Rings: 16, Segments: 256, Seed: int64(100 + s)})
		res.Dataset.Name = fmt.Sprintf("dpot-t%02d", s)
		if _, err := core.Write(context.Background(), aio, res.Dataset, core.Options{Levels: 3, RelTolerance: 1e-4}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("after the campaign writes:")
	printTiers(h, steps)

	// Analysis session: the last three timesteps are hot. Promote their
	// base products into tmpfs; the migrator evicts the coldest bases to
	// make room (old timesteps written first and never read since).
	fmt.Println("\nanalysis touches t05..t07 repeatedly; promoting their bases:")
	var migrated int
	var cost storage.Cost
	for s := steps - 3; s < steps; s++ {
		key := fmt.Sprintf("dpot-t%02d/L2", s)
		if h.Where(key) == 0 {
			continue // already fast
		}
		migs, err := h.Promote(key, 0)
		if err != nil {
			log.Fatalf("promote %s: %v", key, err)
		}
		for _, m := range migs {
			fmt.Printf("  %-16s %s -> %s (%.2f ms)\n", m.Key, m.FromTier, m.ToTier, m.Cost.Seconds*1e3)
			migrated++
			cost.Add(m.Cost)
		}
	}
	fmt.Printf("%d migrations, %.2f ms total simulated cost\n", migrated, cost.Seconds*1e3)
	fmt.Println("\nafter migration:")
	printTiers(h, steps)

	// The hot timesteps now open their bases at memory speed.
	for s := steps - 3; s < steps; s++ {
		name := fmt.Sprintf("dpot-t%02d", s)
		rd, err := core.OpenReader(context.Background(), aio, name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := rd.Base(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("base of %s: %.3f ms I/O\n", name, v.Timings.IOSeconds*1e3)
	}
}

func printTiers(h *storage.Hierarchy, steps int) {
	for s := 0; s < steps; s++ {
		key := fmt.Sprintf("dpot-t%02d/L2", s)
		tier := h.Where(key)
		name := "?"
		if tier >= 0 {
			name = h.Tier(tier).Name
		}
		fmt.Printf("  %-16s base on %s\n", key, name)
	}
}
