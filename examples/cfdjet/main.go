// Cfdjet runs Canopus on the CFD pressure workload twice over: first
// comparing the floating-point codecs on the same refactoring (the §III-C3
// choice the paper leaves pluggable), then placing products across the
// four-tier CORAL-style hierarchy the paper anticipates (Fig. 2) to show
// capacity-driven tier bypass.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	ds := sim.CFD(sim.CFDConfig{Seed: 11})
	fmt.Printf("CFD jet pressure: %d vertices, %d triangles\n",
		ds.Mesh.NumVerts(), ds.Mesh.NumTris())

	// Part 1: codec shoot-out at a fixed 1e-5 relative tolerance.
	fmt.Printf("\n%-8s %10s %12s %14s %12s\n", "codec", "lossless", "payload (B)", "vs raw", "max error")
	for _, name := range []string{"zfp", "sz", "fpc", "flate", "raw"} {
		aio := adios.NewIO(storage.TitanTwoTier(0), nil)
		rep, err := core.Write(context.Background(), aio, ds, core.Options{
			Levels: 3, Codec: name, RelTolerance: 1e-5,
		})
		if err != nil {
			log.Fatal(err)
		}
		rd, err := core.OpenReader(context.Background(), aio, ds.Name)
		if err != nil {
			log.Fatal(err)
		}
		v, err := rd.Retrieve(context.Background(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fe, err := analysis.CompareFields(ds.Data, v.Data)
		if err != nil {
			log.Fatal(err)
		}
		var payload int64
		for _, b := range rep.PayloadBytes {
			payload += b
		}
		lossless := name == "fpc" || name == "flate" || name == "raw"
		fmt.Printf("%-8s %10v %12d %13.1f%% %12.2e\n",
			name, lossless, payload, 100*float64(payload)/float64(rep.RawBytes), fe.MaxErr)
	}

	// Part 2: deep hierarchy placement. Tiny NVRAM and burst-buffer
	// capacities force the paper's bypass rule into action: products
	// skip full tiers and land on the next one down.
	fmt.Println("\nplacement on a 4-tier hierarchy (NVRAM 8 KiB, burst buffer 64 KiB):")
	deep := storage.DeepHierarchy(8<<10, 64<<10)
	aio := adios.NewIO(deep, nil)
	rep, err := core.Write(context.Background(), aio, ds, core.Options{Levels: 4, RelTolerance: 1e-5})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range rep.Placements {
		note := ""
		if len(p.Bypassed) > 0 {
			note = fmt.Sprintf("  (bypassed %v: full)", p.Bypassed)
		}
		fmt.Printf("  %-14s %8d B -> %-12s%s\n", p.Key, p.Cost.Bytes, p.TierName, note)
	}
}
