// Coupling reenacts the workflow that motivates progressive refinement in
// §II-A of the paper: XGC1 and XGCa run coupled, and "for performance
// acceleration, f0, instead of the full dataset, is read by XGCa" — the
// codes exchange a reduced summary rather than the 10 TB particle state.
//
// Here the "XGC1" side writes its dpot plane through Canopus using the
// in-transit staging transport (§III-A), the "XGCa" side fast-forwards the
// system on the reduced base dataset (cheap diffusion steps on the coarse
// mesh), and XGC1 then resumes at high fidelity only where XGCa's
// fast-forward says interesting turbulence developed — a focused regional
// read instead of a full-accuracy exchange.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	res := sim.XGC1(sim.XGC1Config{Seed: 21})
	ds := res.Dataset
	fmt.Printf("XGC1 dpot plane: %d vertices (%d bytes raw)\n", ds.Mesh.NumVerts(), 8*ds.Mesh.NumVerts())

	// XGC1 writes through the staging (in-transit) transport: data goes
	// to the memory tier of auxiliary nodes, not to disk.
	h := storage.TitanTwoTier(0)
	aio := adios.NewIO(h, adios.Staging{})
	if _, err := core.Write(context.Background(), aio, ds, core.Options{Levels: 4, RelTolerance: 1e-4, Chunks: 8}); err != nil {
		log.Fatal(err)
	}
	rd, err := core.OpenReader(context.Background(), aio, ds.Name)
	if err != nil {
		log.Fatal(err)
	}

	// XGCa reads only the f0-like reduced summary: the base dataset.
	base, err := rd.Base(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XGCa reads the base: %d vertices, %d bytes over staging (vs %d raw full)\n",
		base.Mesh.NumVerts(), base.Timings.IOBytes, 8*ds.Mesh.NumVerts())

	// Fast-forward: a few cheap diffusion steps on the coarse mesh stand
	// in for XGCa's reduced-fidelity evolution.
	evolved := fastForward(base.Mesh, base.Data, 5)

	// XGCa hands its state back through the same middleware.
	xgcaOut := &core.Dataset{Name: "dpot-ff", Mesh: base.Mesh, Data: evolved}
	if _, err := core.Write(context.Background(), aio, xgcaOut, core.Options{Levels: 1, RelTolerance: 1e-4}); err != nil {
		log.Fatal(err)
	}

	// XGC1 resumes: find where the fast-forwarded state peaked, and pull
	// full-fidelity data for just that neighborhood.
	pi := peakIndex(evolved)
	p := base.Mesh.Verts[pi]
	const pad = 0.12
	// Steady-state accounting: prime the static mesh/mapping caches once
	// (the coupled session keeps them resident), then compare warm reads.
	if _, err := rd.Retrieve(context.Background(), 0); err != nil {
		log.Fatal(err)
	}
	region, err := rd.RetrieveRegion(context.Background(), 0, p.X-pad, p.Y-pad, p.X+pad, p.Y+pad)
	if err != nil {
		log.Fatal(err)
	}
	full, err := rd.Retrieve(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast-forward flags turbulence near (%.2f, %.2f)\n", p.X, p.Y)
	fmt.Printf("XGC1 resumes at full fidelity for %d of %d vertices there,\n",
		region.CountHave(), region.Mesh.NumVerts())
	fmt.Printf("exchanging %d bytes instead of %d (%.0f%% less)\n",
		region.Timings.IOBytes, full.Timings.IOBytes,
		100*(1-float64(region.Timings.IOBytes)/float64(full.Timings.IOBytes)))
}

// fastForward runs `steps` Jacobi diffusion sweeps over the mesh graph —
// the stand-in for XGCa's symmetric, coarse evolution.
func fastForward(m *mesh.Mesh, data []float64, steps int) []float64 {
	adj := m.BuildAdjacency()
	nbrs := make([][]int32, m.NumVerts())
	for v := range nbrs {
		nbrs[v] = adj.Neighbors(m, int32(v))
	}
	cur := append([]float64(nil), data...)
	next := make([]float64, len(cur))
	for s := 0; s < steps; s++ {
		for v := range cur {
			sum := cur[v]
			for _, u := range nbrs[v] {
				sum += cur[u]
			}
			next[v] = sum / float64(len(nbrs[v])+1)
		}
		cur, next = next, cur
	}
	return cur
}

func peakIndex(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}
