// Quickstart: refactor a field over an unstructured triangular mesh into a
// base dataset plus deltas, place the products across a two-tier storage
// hierarchy, then retrieve progressively — the whole Canopus workflow
// (Fig. 1 of the paper) in one small program.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/storage"
)

func main() {
	// 1. A dataset: double-precision values over a triangular mesh.
	m := mesh.Rect(64, 64, 1, 1)
	data := make([]float64, m.NumVerts())
	for i, v := range m.Verts {
		data[i] = math.Sin(6*v.X)*math.Cos(5*v.Y) + 0.5*v.X
	}
	ds := &core.Dataset{Name: "field", Mesh: m, Data: data}

	// 2. A storage hierarchy: the paper's tmpfs-over-Lustre emulation.
	aio := adios.NewIO(storage.TitanTwoTier(0), nil)

	// 3. Refactor: three accuracy levels, decimation ratio 2 per level,
	//    ZFP-like compression with a 1e-6 relative error bound.
	rep, err := core.Write(context.Background(), aio, ds, core.Options{Levels: 3, RelTolerance: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refactored %d vertices into levels of %v vertices\n",
		m.NumVerts(), rep.VertexCounts)
	for _, p := range rep.Placements {
		fmt.Printf("  %-10s -> %s (%d bytes)\n", p.Key, p.TierName, p.Cost.Bytes)
	}

	// 4. Retrieve progressively: base first, then augment toward full
	//    accuracy, measuring error against the original at each step.
	rd, err := core.OpenReader(context.Background(), aio, "field")
	if err != nil {
		log.Fatal(err)
	}
	v, err := rd.Base(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for {
		fmt.Printf("level %d: %6d vertices, simulated I/O so far %.3f ms\n",
			v.Level, v.Mesh.NumVerts(), v.Timings.IOSeconds*1e3)
		if v.Level == 0 {
			break
		}
		if err := rd.Augment(context.Background(), v); err != nil {
			log.Fatal(err)
		}
	}
	fe, err := analysis.CompareFields(data, v.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-accuracy restore: max error %.3g (codec bound %.3g/level), PSNR %.1f dB\n",
		fe.MaxErr, rd.Tolerance(), fe.PSNR)
}
