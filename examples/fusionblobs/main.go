// Fusionblobs reproduces the paper's motivating use case (§IV-D): a fusion
// scientist explores XGC1 electrostatic-potential data progressively,
// scanning for high-energy blobs at low accuracy first and only paying for
// higher accuracy where the quick look warrants it.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	// Synthesize one poloidal plane of dpot at the paper's mesh scale,
	// with known blob ground truth.
	res := sim.XGC1(sim.XGC1Config{Blobs: 8, Seed: 42})
	ds := res.Dataset
	fmt.Printf("XGC1 dpot plane: %d vertices, %d triangles, %d injected blobs\n",
		ds.Mesh.NumVerts(), ds.Mesh.NumTris(), len(res.Truth))

	// Refactor into 6 levels (base decimation 32x) across two tiers,
	// with deltas split into 8x8 spatial tiles so a zoomed-in read can
	// fetch just the tiles it needs.
	aio := adios.NewIO(storage.TitanTwoTier(0), nil)
	if _, err := core.Write(context.Background(), aio, ds, core.Options{Levels: 6, RelTolerance: 1e-4, Chunks: 8}); err != nil {
		log.Fatal(err)
	}
	rd, err := core.OpenReader(context.Background(), aio, ds.Name)
	if err != nil {
		log.Fatal(err)
	}

	// Full-accuracy reference detections (what the expensive path sees).
	ref := detect(rd, 0)
	fmt.Printf("\n%-28s %7s %10s %12s %9s\n", "accuracy", "#blobs", "diam(px)", "area(px^2)", "overlap")

	// Progressive exploration: start at the base and augment. A scan at
	// 32x decimation already locates most blobs; each augmentation
	// sharpens the picture.
	for l := rd.Levels() - 1; l >= 0; l-- {
		blobs := detect(rd, l)
		st := analysis.Stats(blobs)
		label := fmt.Sprintf("L%d (%dx decimation)", l, 1<<l)
		if l == 0 {
			label = "L0 (full accuracy)"
		}
		fmt.Printf("%-28s %7d %10.1f %12.0f %9.2f\n",
			label, st.Count, st.AvgDiameter, st.TotalArea, analysis.OverlapRatio(blobs, ref))
	}

	fmt.Println("\nblobs found at low accuracy overlap the full-accuracy ones, so the")
	fmt.Println("cheap base scan tells the scientist where to zoom in (§IV-D).")

	// Focused retrieval (§III-E): zoom into the biggest blob seen at the
	// base level and fetch full accuracy for just that neighborhood.
	baseBlobs, baseRaster := detectWithRaster(rd, rd.Levels()-1)
	if len(baseBlobs) == 0 {
		return
	}
	big := baseBlobs[0] // sorted by area descending
	// Pixel center -> mesh coordinates, padded by 2 radii.
	sx := (baseRaster.MaxX - baseRaster.MinX) / float64(baseRaster.W)
	sy := (baseRaster.MaxY - baseRaster.MinY) / float64(baseRaster.H)
	cx := baseRaster.MinX + big.X*sx
	cy := baseRaster.MinY + big.Y*sy
	pad := 1.5 * big.Radius * sx

	// Steady-state accounting: rd is warm (the gallery above already
	// loaded the static mesh hierarchy and mappings), so both the zoom
	// and the full retrieval below pay only data/delta I/O.
	rv, err := rd.RetrieveRegion(context.Background(), 0, cx-pad, cy-pad, cx+pad, cy+pad)
	if err != nil {
		log.Fatal(err)
	}
	full, err := rd.Retrieve(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzoom into blob at (%.2f, %.2f): full accuracy for %d of %d vertices,\n",
		cx, cy, rv.CountHave(), rv.Mesh.NumVerts())
	fmt.Printf("reading %d bytes instead of %d (%.0f%% saved) — focused data retrieval.\n",
		rv.Timings.IOBytes, full.Timings.IOBytes,
		100*(1-float64(rv.Timings.IOBytes)/float64(full.Timings.IOBytes)))
}

func detectWithRaster(rd *core.Reader, level int) ([]analysis.Blob, *analysis.Raster) {
	v, err := rd.Retrieve(context.Background(), level)
	if err != nil {
		log.Fatal(err)
	}
	ras, err := analysis.Rasterize(v.Mesh, v.Data, 256, 256)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := analysis.DetectBlobs(ras.ToGray(), ras.W, ras.H, analysis.Config1)
	if err != nil {
		log.Fatal(err)
	}
	return blobs, ras
}

func detect(rd *core.Reader, level int) []analysis.Blob {
	v, err := rd.Retrieve(context.Background(), level)
	if err != nil {
		log.Fatal(err)
	}
	ras, err := analysis.Rasterize(v.Mesh, v.Data, 256, 256)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := analysis.DetectBlobs(ras.ToGray(), ras.W, ras.H, analysis.Config1)
	if err != nil {
		log.Fatal(err)
	}
	return blobs
}
