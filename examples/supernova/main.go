// Supernova demonstrates automated progressive retrieval on the GenASiS
// astrophysics workload: §III-E notes the augment-until-satisfied loop "can
// be automated if the criteria to terminate (e.g. root mean square error
// between two adjacent levels) is known a priori". This example implements
// exactly that loop — it keeps fetching deltas until the restored field
// stops changing by more than a tolerance, then reports how much I/O the
// early stop saved.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	ds := sim.GenASiS(sim.GenASiSConfig{Rings: 96, Segments: 384, Seed: 7})
	fmt.Printf("GenASiS normVec magnitude: %d vertices, %d triangles\n",
		ds.Mesh.NumVerts(), ds.Mesh.NumTris())

	aio := adios.NewIO(storage.TitanTwoTier(0), nil)
	if _, err := core.Write(context.Background(), aio, ds, core.Options{Levels: 6, RelTolerance: 1e-5}); err != nil {
		log.Fatal(err)
	}
	rd, err := core.OpenReader(context.Background(), aio, ds.Name)
	if err != nil {
		log.Fatal(err)
	}

	// Termination criterion: the RMS difference between two adjacent
	// restored levels, measured on a common raster, must fall below
	// rmsStop (a fraction of the field's spread).
	const rasterN = 128
	rmsStop := 0.02 * analysis.StdDev(ds.Data)

	v, err := rd.Base(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	prev := raster(v)
	fmt.Printf("\n%-24s %12s %14s\n", "level", "RMS vs prev", "cum I/O (ms)")
	fmt.Printf("L%d (base, %dx)%*s %12s %14.2f\n", v.Level, 1<<v.Level, 8-len(fmt.Sprint(v.Level)), "", "-", v.Timings.IOSeconds*1e3)
	for v.Level > 0 {
		if err := rd.Augment(context.Background(), v); err != nil {
			log.Fatal(err)
		}
		cur := raster(v)
		rms, err := analysis.RMSBetweenLevels(prev, cur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L%d (%dx)%*s %12.5f %14.2f\n", v.Level, 1<<v.Level, 14-len(fmt.Sprint(1<<v.Level)), "", rms, v.Timings.IOSeconds*1e3)
		prev = cur
		if rms < rmsStop {
			fmt.Printf("\nconverged: RMS %.5f < stop criterion %.5f at level %d\n", rms, rmsStop, v.Level)
			break
		}
	}

	if v.Level > 0 {
		// How much would the remaining accuracy have cost? Use a fresh
		// reader so both sides pay cold mesh I/O and the comparison is
		// like-for-like.
		rd2, err := core.OpenReader(context.Background(), aio, ds.Name)
		if err != nil {
			log.Fatal(err)
		}
		full, err := rd2.Retrieve(context.Background(), 0)
		if err != nil {
			log.Fatal(err)
		}
		saved := full.Timings.IOSeconds - v.Timings.IOSeconds
		fmt.Printf("stopping at level %d instead of 0 saved %.2f ms of simulated I/O (%.0f%%)\n",
			v.Level, saved*1e3, 100*saved/full.Timings.IOSeconds)
		fe, err := analysis.CompareFields(ds.Data, mustRetrieveAt(rd, 0).Data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(for reference, full restore reaches PSNR %.1f dB vs the original)\n", fe.PSNR)
	} else {
		fmt.Println("criterion required full accuracy; nothing saved this run")
	}
}

func raster(v *core.View) *analysis.Raster {
	r, err := analysis.Rasterize(v.Mesh, v.Data, 128, 128)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func mustRetrieveAt(rd *core.Reader, level int) *core.View {
	v, err := rd.Retrieve(context.Background(), level)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
