// Blobtracking follows blob filaments across a multi-timestep XGC1
// campaign — the transport study the paper's fusion use case builds toward
// ("examine ... the trajectory of high energy particles", §IV-D). The
// campaign is written through the series API, which stores the static mesh
// hierarchy once and per-step payloads only (the XGC1 write pattern of
// §II-A), and the tracker runs on *base-level* data: if reduced accuracy
// preserves the trajectories, the whole transport analysis runs at
// fast-tier speed and never touches the deltas.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/storage"
)

const (
	steps   = 8
	rasterN = 256
	gatePx  = 30
)

func main() {
	seq := sim.XGC1Sequence(sim.XGC1Config{Blobs: 6, Seed: 31}, steps)
	ds0 := seq[0].Dataset
	fmt.Printf("XGC1 campaign: %d timesteps, %d vertices each, %d blob filaments\n",
		steps, ds0.Mesh.NumVerts(), len(seq[0].Truth))

	// Field range across the campaign, for the series codec bound.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, snap := range seq {
		for _, v := range snap.Dataset.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}

	aio := adios.NewIO(storage.TitanTwoTier(0), nil)
	sw, err := core.NewSeriesWriter(context.Background(), aio, "dpot", ds0.Mesh, hi-lo, core.Options{
		Levels: 4, RelTolerance: 1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}
	var payload int64
	for _, snap := range seq {
		rep, err := sw.WriteStep(context.Background(), snap.Dataset.Data)
		if err != nil {
			log.Fatal(err)
		}
		payload += rep.PayloadBytes
	}
	fmt.Printf("stored: hierarchy %d B once + %d B of per-step payloads (%d steps)\n",
		sw.HierarchyBytes(), payload, steps)

	sr, err := core.OpenSeriesReader(context.Background(), aio, "dpot")
	if err != nil {
		log.Fatal(err)
	}

	// Detect per step at two accuracies and track both.
	detectAll := func(level int) ([][]analysis.Blob, float64) {
		frames := make([][]analysis.Blob, steps)
		var io float64
		for s := 0; s < steps; s++ {
			v, err := sr.RetrieveStep(context.Background(), s, level)
			if err != nil {
				log.Fatal(err)
			}
			io += v.Timings.IOSeconds
			ras, err := analysis.Rasterize(v.Mesh, v.Data, rasterN, rasterN)
			if err != nil {
				log.Fatal(err)
			}
			frames[s], err = analysis.DetectBlobs(ras.ToGray(), ras.W, ras.H, analysis.Config1)
			if err != nil {
				log.Fatal(err)
			}
		}
		return frames, io
	}
	fullFrames, fullIO := detectAll(0)
	baseFrames, baseIO := detectAll(sr.Levels() - 1)

	fullTracks := analysis.LongTracks(analysis.TrackBlobs(fullFrames, gatePx), steps/2)
	baseTracks := analysis.LongTracks(analysis.TrackBlobs(baseFrames, gatePx), steps/2)

	fmt.Printf("\nfull accuracy:  %d long trajectories, I/O %.1f ms\n", len(fullTracks), fullIO*1e3)
	fmt.Printf("base level:     %d long trajectories, I/O %.2f ms (%.0fx cheaper)\n",
		len(baseTracks), baseIO*1e3, fullIO/baseIO)

	fmt.Printf("\n%-28s %14s %14s\n", "trajectory (base level)", "displacement", "path length")
	for i, tr := range baseTracks {
		fmt.Printf("track %-2d frames %d-%-10d %11.1f px %11.1f px\n",
			i, tr.Start, tr.End(), tr.Displacement(), tr.PathLength())
	}

	// Do base-level trajectories agree with full-accuracy ones? Match by
	// start position.
	matched := 0
	for _, bt := range baseTracks {
		for _, ft := range fullTracks {
			if bt.Blobs[0].Overlaps(ft.Blobs[0]) {
				matched++
				break
			}
		}
	}
	fmt.Printf("\n%d of %d base-level trajectories start where a full-accuracy one does —\n",
		matched, len(baseTracks))
	fmt.Println("transport dynamics survive the accuracy trade, at a fraction of the I/O.")
}
