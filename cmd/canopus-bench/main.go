// Command canopus-bench regenerates the tables and figures of the Canopus
// paper's evaluation (§IV). Each figure driver runs the full pipeline —
// synthetic workload, refactoring, tiered placement, progressive retrieval,
// analytics — and prints the series the paper plots.
//
// Usage:
//
//	canopus-bench -fig all            # every figure, paper-scale meshes
//	canopus-bench -fig 5              # one figure
//	canopus-bench -fig 9 -scale quick # reduced meshes for a fast pass
//	canopus-bench -fig 7 -ascii       # include text-art galleries
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(bench.Figures(), ", ")+", or all")
	scale := flag.String("scale", "paper", "dataset scale: paper or quick")
	ascii := flag.Bool("ascii", false, "render text-art galleries for Figs. 4 and 7")
	workers := flag.Int("workers", 0, "concurrent pipeline workers (0 = NumCPU, 1 = serial)")
	obsJSON := flag.String("obs-json", "", "run the fixed observability workload and write span-phase medians to this file")
	faultSpec := flag.String("fault-spec", "", "run the fault-injection demo under this spec (e.g. seed=1,tier=lustre,read.err=1)")
	tolJSON := flag.String("tolerance-sweep", "", "run the error-target retrieval sweep and write its acceptance record to this file")
	placeJSON := flag.String("placement-bench", "", "run the Zipfian static-vs-adaptive placement bench and write its acceptance record to this file")
	serveJSON := flag.String("serve-bench", "", "run the multi-tenant serving load bench and write its acceptance record to this file")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	var s bench.Scale
	switch *scale {
	case "paper":
		s = bench.ScalePaper
	case "quick":
		s = bench.ScaleQuick
	default:
		fmt.Fprintf(os.Stderr, "canopus-bench: unknown scale %q (want paper or quick)\n", *scale)
		os.Exit(2)
	}
	// -obs-json, -fault-spec, -tolerance-sweep, -placement-bench, or
	// -serve-bench alone run just their own workload; an explicit -fig
	// alongside any of them runs the figures too.
	figSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figSet = true
		}
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-bench")
	if err == nil {
		r := bench.New(os.Stdout, s)
		r.ASCII = *ascii
		r.Workers = *workers
		if (*obsJSON == "" && *faultSpec == "" && *tolJSON == "" && *placeJSON == "" && *serveJSON == "") || figSet {
			err = r.Run(*fig)
		}
		if err == nil && *faultSpec != "" {
			err = r.FaultDemo(ctx, *faultSpec)
		}
		if err == nil && *tolJSON != "" {
			err = r.ToleranceSweep(ctx, *tolJSON)
		}
		if err == nil && *placeJSON != "" {
			err = r.PlacementBench(ctx, *placeJSON)
		}
		if err == nil && *serveJSON != "" {
			err = r.ServeBench(ctx, *serveJSON)
		}
		if err == nil && *obsJSON != "" {
			err = r.ObsBench(ctx, *obsJSON)
		}
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-bench: %v\n", err)
		os.Exit(1)
	}
}
