// Command canopus-serve exposes refactored campaigns over HTTP: a sharded,
// multi-tenant front end where N shards each own a storage hierarchy and
// campaigns hash to shards by name. Endpoints cover level reads, focused
// region reads, error-target reads, and an SSE progressive stream; every
// response carries the request's cost bill and /v1/tenants shows the
// per-tenant accounting. See README "Serving Canopus".
//
// Usage:
//
//	canopus-serve -demo -addr :8080
//	canopus-serve -dir /scratch/canopus -shards 4 -quotas 'guest=2:5'
//	curl -H 'X-Canopus-Tenant: alice' 'localhost:8080/v1/read/dpot-00?level=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/adios"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	dir := flag.String("dir", "", "data directory; shard i serves <dir>/shard<i> (file-backed). Empty requires -demo (in-memory shards)")
	shards := flag.Int("shards", 4, "number of campaign shards (hierarchies)")
	demo := flag.Bool("demo", false, "populate in-memory shards with synthetic XGC1 campaigns instead of opening -dir")
	demoCampaigns := flag.Int("demo-campaigns", 8, "campaigns to synthesize under -demo")
	quotas := flag.String("quotas", "", "per-tenant token buckets as 'tenant=rate:burst,...' (requests/sec and burst); unlisted tenants are unlimited")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing retrievals (0 = 4x GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max requests queued for a slot before immediate 429 (0 = 4x max-inflight)")
	admissionWait := flag.Duration("admission-wait", 0, "max time a queued request waits for a slot (0 = 2s)")
	workers := flag.Int("workers", 0, "engine workers per cached reader (0 = NumCPU)")
	cacheMB := flag.Int("cache-mb", 64, "page cache MiB per shard (0 = off)")
	tileCacheMB := flag.Int("tile-cache-mb", 32, "decoded-tile cache MiB per shard (0 = off)")
	placePolicy := flag.String("place-policy", "lru", "placement policy per shard: lru, freq, or cost (adaptive policies run a background promoter)")
	degrade := flag.Bool("degrade", false, "serve best-effort views when a delta level is unreadable instead of failing the request")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-serve")
	if err == nil {
		err = run(ctx, *addr, *dir, *shards, *demo, *demoCampaigns, *quotas,
			*maxInflight, *maxQueue, *admissionWait, *workers, *cacheMB, *tileCacheMB, *placePolicy, *degrade)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-serve: %v\n", err)
		os.Exit(1)
	}
}

// parseQuotas parses 'tenant=rate:burst,...'.
func parseQuotas(s string) (map[string]server.Quota, error) {
	out := map[string]server.Quota{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, field := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("quota %q: want tenant=rate:burst", field)
		}
		rs, bs, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("quota %q: want tenant=rate:burst", field)
		}
		rate, err := strconv.ParseFloat(rs, 64)
		if err != nil {
			return nil, fmt.Errorf("quota %q rate: %w", field, err)
		}
		burst, err := strconv.ParseFloat(bs, 64)
		if err != nil {
			return nil, fmt.Errorf("quota %q burst: %w", field, err)
		}
		out[name] = server.Quota{Rate: rate, Burst: burst}
	}
	return out, nil
}

func run(ctx context.Context, addr, dir string, shards int, demo bool, demoCampaigns int, quotaSpec string,
	maxInflight, maxQueue int, admissionWait time.Duration, workers, cacheMB, tileCacheMB int, placePolicy string, degrade bool) error {
	if shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}
	if dir == "" && !demo {
		return fmt.Errorf("either -dir (file-backed shards) or -demo (synthetic in-memory shards) is required")
	}
	quotas, err := parseQuotas(quotaSpec)
	if err != nil {
		return err
	}
	pol, err := place.ByName(placePolicy)
	if err != nil {
		return err
	}

	ios := make([]*adios.IO, shards)
	for i := range ios {
		var h *storage.Hierarchy
		if dir == "" {
			h = storage.TitanTwoTier(64 << 20)
		} else {
			if h, err = storage.FileTwoTier(fmt.Sprintf("%s/shard%d", dir, i), 0); err != nil {
				return err
			}
		}
		h.SetPolicy(pol)
		if pol.Name() != "lru" {
			pr := h.NewPromoter(0)
			pr.Start()
			defer pr.Stop()
		}
		aio := adios.NewIO(h, nil)
		if cacheMB > 0 {
			aio.SetCache(adios.NewPageCache(int64(cacheMB)<<20, 0))
		}
		if tileCacheMB > 0 {
			aio.SetTileCache(compress.NewTileCache(int64(tileCacheMB) << 20))
		}
		ios[i] = aio
	}
	if demo {
		if err := populateDemo(ctx, ios, demoCampaigns, workers); err != nil {
			return err
		}
	}

	srv, err := server.New(server.Config{
		Shards:        ios,
		MaxInflight:   maxInflight,
		MaxQueue:      maxQueue,
		AdmissionWait: admissionWait,
		Quotas:        quotas,
		Workers:       workers,
		Degrade:       degrade,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("canopus-serve: %d shard(s) on %s (policy %s)\n", shards, addr, pol.Name())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// populateDemo refactors n synthetic XGC1 campaigns into the shard each
// one's name hashes to, so the server's routing finds them.
func populateDemo(ctx context.Context, ios []*adios.IO, n, workers int) error {
	for i := 0; i < n; i++ {
		res := sim.XGC1(sim.XGC1Config{Rings: 12, Segments: 128, Seed: int64(i + 1)})
		ds := res.Dataset
		ds.Name = fmt.Sprintf("dpot-%02d", i)
		aio := ios[server.ShardIndex(ds.Name, len(ios))]
		if _, err := core.Write(ctx, aio, ds, core.Options{Levels: 3, RelTolerance: 1e-4, Workers: workers}); err != nil {
			return fmt.Errorf("demo campaign %s: %w", ds.Name, err)
		}
		fmt.Printf("canopus-serve: demo campaign %s on shard %d\n", ds.Name, server.ShardIndex(ds.Name, len(ios)))
	}
	return nil
}
