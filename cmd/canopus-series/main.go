// Command canopus-series writes and explores a multi-timestep campaign
// through the shared-hierarchy series API: the static mesh is refactored
// and stored once, each timestep stores compressed payloads only — the
// paper's §II-A write pattern. Use -write to produce a campaign and
// -step/-level to retrieve from it.
//
// Usage:
//
//	canopus-series -dir /tmp/campaign -write -steps 8
//	canopus-series -dir /tmp/campaign -step 3 -level 2
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	name := flag.String("name", "dpot", "variable name")
	write := flag.Bool("write", false, "generate and write a campaign (otherwise retrieve)")
	steps := flag.Int("steps", 8, "timesteps to write")
	levels := flag.Int("levels", 4, "accuracy levels")
	tol := flag.Float64("tol", 1e-4, "relative error tolerance")
	seed := flag.Int64("seed", 1, "workload seed")
	step := flag.Int("step", 0, "timestep to retrieve")
	level := flag.Int("level", 0, "accuracy level to retrieve")
	workers := flag.Int("workers", 0, "concurrent pipeline workers (0 = NumCPU, 1 = serial)")
	codecChunk := flag.Int("codec-chunk", 0, "values per chunk of the chunked codec container (0 = default, negative = plain v1 streams)")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-series")
	if err == nil {
		if *write {
			err = runWrite(ctx, *dir, *name, *steps, *levels, *tol, *seed, *workers, *codecChunk)
		} else {
			err = runRead(ctx, *dir, *name, *step, *level, *workers)
		}
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-series: %v\n", err)
		os.Exit(1)
	}
}

func runWrite(ctx context.Context, dir, name string, steps, levels int, tol float64, seed int64, workers, codecChunk int) error {
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	aio := adios.NewIO(h, nil)
	seq := sim.XGC1Sequence(sim.XGC1Config{Seed: seed}, steps)

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, snap := range seq {
		for _, v := range snap.Dataset.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	sw, err := core.NewSeriesWriter(ctx, aio, name, seq[0].Dataset.Mesh, hi-lo, core.Options{
		Levels: levels, RelTolerance: tol, Workers: workers,
		CodecChunk: codecChunk,
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\tpayload bytes\twrite I/O(ms)\tcompute(ms)")
	var payload int64
	for _, snap := range seq {
		rep, err := sw.WriteStep(ctx, snap.Dataset.Data)
		if err != nil {
			return err
		}
		payload += rep.PayloadBytes
		compute := rep.Timings.DecimateSeconds + rep.Timings.DeltaSeconds + rep.Timings.CompressSeconds
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", rep.Step, rep.PayloadBytes,
			rep.Timings.IOSeconds*1e3, compute*1e3)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("campaign %q: %d steps under %s\n", name, steps, dir)
	fmt.Printf("shared hierarchy %d B stored once; %d B of per-step payloads\n",
		sw.HierarchyBytes(), payload)
	return nil
}

func runRead(ctx context.Context, dir, name string, step, level, workers int) error {
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	sr, err := core.OpenSeriesReader(ctx, adios.NewIO(h, nil), name)
	if err != nil {
		return err
	}
	sr.SetWorkers(workers)
	v, err := sr.RetrieveStep(ctx, step, level)
	if err != nil {
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v.Data {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	fmt.Printf("campaign %q: %d steps, %d levels\n", name, sr.Steps(), sr.Levels())
	fmt.Printf("step %d at level %d: %d vertices, range [%.4g, %.4g]\n",
		step, v.Level, v.Mesh.NumVerts(), lo, hi)
	fmt.Printf("cost: I/O %.2f ms (%d bytes modeled, %d real), decompress %.2f ms, restore %.2f ms\n",
		v.Timings.IOSeconds*1e3, v.Timings.IOBytes, v.Timings.IORealBytes,
		v.Timings.DecompressSeconds*1e3, v.Timings.RestoreSeconds*1e3)
	return nil
}
