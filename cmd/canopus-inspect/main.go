// Command canopus-inspect dumps the contents of a file-backed Canopus
// storage hierarchy: which key sits on which tier, and the variables and
// attributes inside each BP container — the adios_inq_var view of a
// refactored dataset.
//
// Usage:
//
//	canopus-inspect -dir /tmp/canopus
//	canopus-inspect -dir /tmp/canopus -key dpot/L2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/adios"
	"repro/internal/obs"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	key := flag.String("key", "", "inspect one container in detail (default: list everything)")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, finish, err := ocli.Start(context.Background(), "canopus-inspect")
	if err == nil {
		err = run(ctx, *dir, *key)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-inspect: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dir, key string) error {
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	aio := adios.NewIO(h, nil)
	if key != "" {
		return dump(ctx, aio, key)
	}
	keys := h.Keys()
	if len(keys) == 0 {
		fmt.Printf("no containers under %s\n", dir)
		return nil
	}
	for _, k := range keys {
		if err := dump(ctx, aio, k); err != nil {
			return fmt.Errorf("%s: %w", k, err)
		}
	}
	return nil
}

func dump(ctx context.Context, aio *adios.IO, key string) error {
	hd, err := aio.Open(ctx, key, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s (tier %d: %s)\n", key, hd.TierIdx, hd.TierName)
	vars := hd.BP.Vars()
	if len(vars) == 0 {
		fmt.Println("  [attributes only]")
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  variable\tlevel\ttype\tcount\tbytes\tattrs")
	for _, v := range vars {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%d\t%d\t%v\n", v.Name, v.Level, v.Type, v.Count, v.Size, v.Attrs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, k := range []string{"name", "mode", "levels", "codec", "tolerance", "estimator", "raw-bytes"} {
		if val, ok := hd.BP.Attr(k); ok {
			fmt.Printf("  @%s = %s\n", k, val)
		}
	}
	return nil
}
