// Command canopus-refactor generates one of the paper's synthetic workloads
// and refactors it into a base dataset plus deltas across a file-backed
// two-tier storage hierarchy (the Fig. 1 write path). The products can then
// be explored with canopus-restore, canopus-blob, and canopus-inspect.
//
// Usage:
//
//	canopus-refactor -app xgc1 -levels 4 -dir /tmp/canopus
//	canopus-refactor -app genasis -codec sz -tol 1e-5 -dir /tmp/canopus
//	canopus-refactor -app cfd -mode direct -dir /tmp/canopus
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	app := flag.String("app", "xgc1", "workload: xgc1, genasis, or cfd")
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	levels := flag.Int("levels", 3, "total accuracy levels N")
	ratio := flag.Float64("ratio", 2, "decimation ratio between adjacent levels")
	codec := flag.String("codec", "zfp", "floating-point codec: zfp, sz, fpc, flate, raw")
	tol := flag.Float64("tol", 1e-6, "relative error tolerance for lossy codecs")
	mode := flag.String("mode", "delta", "refactoring mode: delta (Canopus) or direct (baseline)")
	estimator := flag.String("estimator", "mean", "delta estimator: mean or barycentric")
	transport := flag.String("transport", "posix", "ADIOS transport: posix, mpi-aggregate, staging")
	chunks := flag.Int("chunks", 1, "spatial delta tiles per axis (enables focused regional reads)")
	seed := flag.Int64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent pipeline workers (0 = NumCPU, 1 = serial)")
	codecChunk := flag.Int("codec-chunk", 0, "values per chunk of the chunked codec container (0 = default, negative = plain v1 streams)")
	placePolicy := flag.String("place-policy", "lru", "placement policy governing which tier each product lands on: lru (static fall-through), freq, or cost")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-refactor")
	if err == nil {
		err = run(ctx, *app, *dir, *levels, *ratio, *codec, *tol, *mode, *estimator, *transport, *chunks, *seed, *workers, *codecChunk, *placePolicy)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-refactor: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, app, dir string, levels int, ratio float64, codec string, tol float64, modeStr, estimator, transport string, chunks int, seed int64, workers, codecChunk int, placePolicy string) error {
	ds, err := makeDataset(app, seed)
	if err != nil {
		return err
	}
	mode, err := core.ModeByName(modeStr)
	if err != nil {
		return err
	}
	tr, err := adios.TransportByName(transport)
	if err != nil {
		return err
	}
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	pol, err := place.ByName(placePolicy)
	if err != nil {
		return err
	}
	h.SetPolicy(pol)
	aio := adios.NewIO(h, tr)
	rep, err := core.Write(ctx, aio, ds, core.Options{
		Levels:        levels,
		RatioPerLevel: ratio,
		Codec:         codec,
		RelTolerance:  tol,
		Estimator:     estimator,
		Mode:          mode,
		Chunks:        chunks,
		Workers:       workers,
		CodecChunk:    codecChunk,
	})
	if err != nil {
		return err
	}

	fmt.Printf("refactored %q (%s, %d vertices) into %d levels under %s\n",
		ds.Name, app, ds.Mesh.NumVerts(), rep.Levels, dir)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "product\tvertices\tpayload bytes\tcontainer bytes\ttier")
	for i, p := range rep.Placements {
		// Placements are recorded base first.
		l := rep.Levels - 1 - i
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n",
			p.Key, rep.VertexCounts[l], rep.PayloadBytes[l], p.Cost.Bytes, p.TierName)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	var payload int64
	for _, b := range rep.PayloadBytes {
		payload += b
	}
	fmt.Printf("data payload: raw %d B -> compressed %d B (%.2fx reduction); containers incl. mesh hierarchy + mappings: %d B\n",
		rep.RawBytes, payload, float64(rep.RawBytes)/float64(payload), rep.StoredBytes())
	fmt.Printf("codec %s, abs tolerance %.3g\n", rep.Codec, rep.Tolerance)
	if len(rep.Bounds) > 0 {
		fmt.Printf("error bounds per level (coarse to fine):")
		for l := rep.Levels - 1; l >= 0; l-- {
			fmt.Printf(" L%d=%.3g", l, rep.Bounds[l])
		}
		fmt.Println()
	}
	fmt.Printf("phases: decimate %.1f ms, delta %.1f ms, compress %.1f ms, simulated I/O %.1f ms\n",
		rep.Timings.DecimateSeconds*1e3, rep.Timings.DeltaSeconds*1e3,
		rep.Timings.CompressSeconds*1e3, rep.Timings.IOSeconds*1e3)
	return nil
}

func makeDataset(app string, seed int64) (*core.Dataset, error) {
	switch app {
	case "xgc1":
		return sim.XGC1(sim.XGC1Config{Seed: seed}).Dataset, nil
	case "genasis":
		return sim.GenASiS(sim.GenASiSConfig{Seed: seed}), nil
	case "cfd":
		return sim.CFD(sim.CFDConfig{Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown app %q (want xgc1, genasis, or cfd)", app)
	}
}
