// Command canopus-query runs value-predicate queries against a refactored
// variable through the progressive query engine: screen on the base level,
// refine candidates with focused regional reads, verify at the answer
// level. The -exhaustive flag answers by full retrieval instead, for
// comparing I/O.
//
// Usage:
//
//	canopus-query -dir /tmp/canopus -name dpot -where "> 0.8"
//	canopus-query -dir /tmp/canopus -name dpot -where "< -0.2" -level 1 -exhaustive
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/adios"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	name := flag.String("name", "dpot", "variable name")
	where := flag.String("where", "> 0.8", "predicate: '<op> <threshold>' with op in > >= < <=")
	level := flag.Int("level", 0, "accuracy level to answer at (0 = full)")
	exhaustive := flag.Bool("exhaustive", false, "answer by full retrieval instead of progressive screening")
	limit := flag.Int("limit", 20, "max matches to print")
	workers := flag.Int("workers", 0, "concurrent retrieval workers (0 = NumCPU, 1 = serial)")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-query")
	if err == nil {
		err = run(ctx, *dir, *name, *where, *level, *exhaustive, *limit, *workers)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-query: %v\n", err)
		os.Exit(1)
	}
}

func parseWhere(s string) (query.Predicate, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return query.Predicate{}, fmt.Errorf("predicate %q: want '<op> <threshold>'", s)
	}
	th, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return query.Predicate{}, fmt.Errorf("predicate %q: %w", s, err)
	}
	p := query.Predicate{Op: fields[0], Threshold: th}
	return p, p.Validate()
}

func run(ctx context.Context, dir, name, where string, level int, exhaustive bool, limit, workers int) error {
	pred, err := parseWhere(where)
	if err != nil {
		return err
	}
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	rd, err := core.OpenReader(ctx, adios.NewIO(h, nil), name)
	if err != nil {
		return err
	}
	rd.SetWorkers(workers)
	var res *query.Result
	if exhaustive {
		res, err = query.RunExhaustive(ctx, rd, pred, level)
	} else {
		res, err = query.Run(ctx, rd, pred, query.Options{Level: level})
	}
	if err != nil {
		return err
	}
	mode := "progressive"
	if exhaustive {
		mode = "exhaustive"
	}
	fmt.Printf("%s %s %g (level %d, %s): %d matches",
		name, pred.Op, pred.Threshold, res.Level, mode, len(res.Matches))
	if !exhaustive {
		fmt.Printf(", %d candidate regions refined", res.ScreenedRegions)
	}
	fmt.Printf("\nI/O: %.2f ms simulated, %d bytes modeled, %d real; decompress %.2f ms, restore %.2f ms\n",
		res.Timings.IOSeconds*1e3, res.Timings.IOBytes, res.Timings.IORealBytes,
		res.Timings.DecompressSeconds*1e3, res.Timings.RestoreSeconds*1e3)
	for i, m := range res.Matches {
		if i >= limit {
			fmt.Printf("... %d more\n", len(res.Matches)-limit)
			break
		}
		fmt.Printf("  v%-7d (%+.3f, %+.3f) = %.4f\n", m.Vertex, m.X, m.Y, m.Value)
	}
	return nil
}
