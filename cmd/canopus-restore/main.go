// Command canopus-restore progressively restores a refactored variable to a
// chosen accuracy level (the Fig. 1 read path) and reports per-phase costs
// and, when restoring full accuracy of a lossy-coded variable, the error
// bound in effect.
//
// Usage:
//
//	canopus-restore -dir /tmp/canopus -name dpot -level 0
//	canopus-restore -dir /tmp/canopus -name dpot -level 2 -ascii
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	name := flag.String("name", "dpot", "variable name")
	level := flag.Int("level", 0, "target accuracy level (0 = full)")
	tolerance := flag.Float64("tolerance", 0, "error target: retrieve the cheapest accuracy whose recorded bound meets this absolute error (overrides -level; 0 = off)")
	region := flag.String("region", "", "focused retrieval region as minX,minY,maxX,maxY")
	ascii := flag.Bool("ascii", false, "render the restored field as text art")
	workers := flag.Int("workers", 0, "concurrent retrieval workers (0 = NumCPU, 1 = serial)")
	cacheMB := flag.Int("cache-mb", 0, "page cache size in MiB shared across reads (0 = no cache)")
	tileCacheMB := flag.Int("tile-cache-mb", 0, "decoded-tile cache size in MiB shared across reads: repeated retrievals over the same tiles skip decompression (0 = no cache)")
	degrade := flag.Bool("degrade", false, "return the best accuracy achieved when a delta level is corrupt or unreachable, instead of failing")
	placePolicy := flag.String("place-policy", "lru", "placement policy: lru (static), freq, or cost; adaptive policies run a background promoter that physically reorganizes the hierarchy around observed reads")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-restore")
	if err == nil {
		err = run(ctx, *dir, *name, *level, *tolerance, *region, *ascii, *workers, *cacheMB, *tileCacheMB, *degrade, *placePolicy)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-restore: %v\n", err)
		os.Exit(1)
	}
}

// printDegradation reports a degraded retrieval on stderr so scripted
// consumers of stdout notice without having to parse the data lines.
func printDegradation(d *core.Degradation) {
	if d == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "canopus-restore: DEGRADED: wanted level %d, achieved level %d (%d level(s) lost): %s\n",
		d.RequestedLevel, d.AchievedLevel, d.LevelsLost, d.Reason)
	if d.RequestedTolerance > 0 {
		fmt.Fprintf(os.Stderr, "canopus-restore: requested error target %.3g\n", d.RequestedTolerance)
	}
	if d.ErrorBound >= 0 {
		fmt.Fprintf(os.Stderr, "canopus-restore: achieved error bound %.3g\n", d.ErrorBound)
	}
}

func parseRegion(s string) (minX, minY, maxX, maxY float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("region %q: want minX,minY,maxX,maxY", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		if vals[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("region %q: %w", s, err)
		}
	}
	return vals[0], vals[1], vals[2], vals[3], nil
}

func run(ctx context.Context, dir, name string, level int, tolerance float64, region string, ascii bool, workers, cacheMB, tileCacheMB int, degrade bool, placePolicy string) error {
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	pol, err := place.ByName(placePolicy)
	if err != nil {
		return err
	}
	h.SetPolicy(pol)
	if pol.Name() != "lru" {
		// Adaptive placement: a background promoter migrates hot
		// containers toward the fast tier while this process reads. The
		// hierarchy is file-backed, so moves persist for later sessions.
		pr := h.NewPromoter(0)
		pr.Start()
		defer pr.Stop()
	}
	aio := adios.NewIO(h, nil)
	if cacheMB > 0 {
		aio.SetCache(adios.NewPageCache(int64(cacheMB)<<20, 0))
	}
	if tileCacheMB > 0 {
		aio.SetTileCache(compress.NewTileCache(int64(tileCacheMB) << 20))
	}
	rd, err := core.OpenReader(ctx, aio, name)
	if err != nil {
		return err
	}
	rd.SetWorkers(workers)
	rd.SetDegrade(degrade)
	if region != "" {
		if tolerance > 0 {
			return fmt.Errorf("-tolerance does not combine with -region (focused reads are level-addressed)")
		}
		minX, minY, maxX, maxY, err := parseRegion(region)
		if err != nil {
			return err
		}
		rv, err := rd.RetrieveRegion(ctx, level, minX, minY, maxX, maxY)
		if err != nil {
			return err
		}
		fmt.Printf("%s level %d: focused retrieval of [%g,%g]x[%g,%g]\n", name, level, minX, maxX, minY, maxY)
		fmt.Printf("restored %d of %d vertices, reading %d bytes modeled (%d real) in %.2f ms simulated I/O\n",
			rv.CountHave(), rv.Mesh.NumVerts(), rv.Timings.IOBytes, rv.Timings.IORealBytes, rv.Timings.IOSeconds*1e3)
		printDegradation(rv.Degradation)
		return nil
	}
	var v *core.View
	if tolerance > 0 {
		v, err = rd.RetrieveToTolerance(ctx, tolerance)
	} else {
		v, err = rd.Retrieve(ctx, level)
	}
	if err != nil {
		return err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v.Data {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if tolerance > 0 {
		fmt.Printf("%s restored to level %d of %d (mode %s) for error target %.3g\n",
			name, v.Level, rd.Levels(), rd.Mode(), tolerance)
	} else {
		fmt.Printf("%s restored to level %d of %d (mode %s)\n", name, v.Level, rd.Levels(), rd.Mode())
	}
	printDegradation(v.Degradation)
	if v.ErrorBound >= 0 {
		fmt.Printf("error bound at this accuracy: %.3g\n", v.ErrorBound)
	}
	fmt.Printf("mesh: %d vertices, %d triangles\n", v.Mesh.NumVerts(), v.Mesh.NumTris())
	fmt.Printf("data: range [%.4g, %.4g], stddev %.4g\n", lo, hi, analysis.StdDev(v.Data))
	fmt.Printf("codec error bound: %.3g per restored level\n", rd.Tolerance())
	fmt.Printf("cost: I/O %.2f ms (%d bytes modeled, %d real), decompress %.2f ms, restore %.2f ms\n",
		v.Timings.IOSeconds*1e3, v.Timings.IOBytes, v.Timings.IORealBytes,
		v.Timings.DecompressSeconds*1e3, v.Timings.RestoreSeconds*1e3)

	if ascii {
		ras, err := analysis.Rasterize(v.Mesh, v.Data, 160, 160)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(ras.RenderASCII(76))
	}
	return nil
}
