// Command canopus-blob runs the paper's fusion analytics — blob detection
// on the electrostatic potential — against a refactored variable at a
// chosen accuracy level (§IV-D). It reports the blob list and the summary
// statistics of Fig. 8, optionally comparing against the full-accuracy
// detections.
//
// Usage:
//
//	canopus-blob -dir /tmp/canopus -name dpot -level 2
//	canopus-blob -dir /tmp/canopus -name dpot -level 3 -config 2 -compare
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"text/tabwriter"

	"repro/internal/adios"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

func main() {
	dir := flag.String("dir", "canopus-data", "storage hierarchy directory")
	name := flag.String("name", "dpot", "variable name")
	level := flag.Int("level", 0, "accuracy level to analyze")
	cfg := flag.Int("config", 1, "detector config from the paper: 1, 2, or 3")
	raster := flag.Int("raster", 256, "raster resolution (pixels per side)")
	compare := flag.Bool("compare", false, "also detect at full accuracy and report the overlap ratio")
	workers := flag.Int("workers", 0, "concurrent retrieval workers (0 = NumCPU, 1 = serial)")
	var ocli obs.CLI
	ocli.Bind(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, finish, err := ocli.Start(ctx, "canopus-blob")
	if err == nil {
		err = run(ctx, *dir, *name, *level, *cfg, *raster, *compare, *workers)
		if ferr := finish(); err == nil {
			err = ferr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "canopus-blob: %v\n", err)
		os.Exit(1)
	}
}

func params(cfg int) (analysis.BlobParams, error) {
	switch cfg {
	case 1:
		return analysis.Config1, nil
	case 2:
		return analysis.Config2, nil
	case 3:
		return analysis.Config3, nil
	default:
		return analysis.BlobParams{}, fmt.Errorf("unknown config %d (want 1, 2, or 3)", cfg)
	}
}

func detect(ctx context.Context, rd *core.Reader, level, raster int, p analysis.BlobParams) ([]analysis.Blob, *core.View, error) {
	v, err := rd.Retrieve(ctx, level)
	if err != nil {
		return nil, nil, err
	}
	ras, err := analysis.Rasterize(v.Mesh, v.Data, raster, raster)
	if err != nil {
		return nil, nil, err
	}
	blobs, err := analysis.DetectBlobs(ras.ToGray(), ras.W, ras.H, p)
	return blobs, v, err
}

func run(ctx context.Context, dir, name string, level, cfg, raster int, compare bool, workers int) error {
	p, err := params(cfg)
	if err != nil {
		return err
	}
	h, err := storage.FileTwoTier(dir, 0)
	if err != nil {
		return err
	}
	rd, err := core.OpenReader(ctx, adios.NewIO(h, nil), name)
	if err != nil {
		return err
	}
	rd.SetWorkers(workers)
	blobs, v, err := detect(ctx, rd, level, raster, p)
	if err != nil {
		return err
	}
	st := analysis.Stats(blobs)
	fmt.Printf("%s level %d (%d vertices), Config%d: %d blobs, avg diameter %.1f px, aggregate area %.0f px^2\n",
		name, v.Level, v.Mesh.NumVerts(), cfg, st.Count, st.AvgDiameter, st.TotalArea)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "center(px)\tradius(px)\tarea(px^2)")
	for _, b := range blobs {
		fmt.Fprintf(tw, "(%.0f, %.0f)\t%.1f\t%.0f\n", b.X, b.Y, b.Radius, b.Area)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if compare && level != 0 {
		ref, _, err := detect(ctx, rd, 0, raster, p)
		if err != nil {
			return err
		}
		fmt.Printf("overlap ratio vs full accuracy (%d blobs): %.2f\n",
			len(ref), analysis.OverlapRatio(blobs, ref))
	}
	return nil
}
