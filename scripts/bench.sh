#!/usr/bin/env bash
# bench.sh — run the end-to-end pipeline benchmark and the ranged-read
# benchmark, emit the ranged-read results as BENCH_ranged.json, emit the
# chunked-codec results (intra-product parallel decode plus the ranged-read
# numbers they move) as BENCH_codec.json, emit span-derived per-phase
# medians of the fixed observability workload as BENCH_obs.json, emit
# the error-target retrieval sweep (requested eps vs achieved error vs bytes
# moved, self-asserting) as BENCH_tolerance.json, emit the Zipfian
# static-vs-adaptive placement comparison as BENCH_placement.json, and emit
# the multi-tenant serving load bench as BENCH_serve.json.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  value for go test -benchtime (default 1x for a quick sweep;
#              use e.g. 2s for stable numbers)
#
# BENCH_ranged.json carries, per benchmark case: ns/op, the bytes the
# retrieval fetched (modeled extents and real backend traffic), and the
# allocation footprint (peak working set scales with extents fetched, not
# container size — see DESIGN.md "Read path"). BENCH_obs.json carries, per
# trace span name, the occurrence count and median/total durations of a
# fixed refactor-and-retrieve workload (see DESIGN.md §8 "Observability").
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
OUT="BENCH_ranged.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkPipelineWriteRead|BenchmarkRangedRead' \
	-benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

awk '
/^BenchmarkRangedRead\// {
	name = $1
	ns = ""; modeled = ""; real = ""; bytes = ""; allocs = ""; dns = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op") ns = $(i-1)
		if ($(i) == "modeled-bytes/op") modeled = $(i-1)
		if ($(i) == "real-bytes/op") real = $(i-1)
		if ($(i) == "B/op") bytes = $(i-1)
		if ($(i) == "allocs/op") allocs = $(i-1)
		if ($(i) == "decompress-ns/op") dns = $(i-1)
	}
	printf "%s{\"name\":\"%s\",\"ns_per_op\":%s,\"modeled_bytes_per_op\":%s,\"real_bytes_per_op\":%s,\"alloc_bytes_per_op\":%s,\"allocs_per_op\":%s,\"decompress_ns_per_op\":%s}", sep, name, ns, modeled, real, bytes, allocs, dns == "" ? "null" : dns
	sep = ",\n "
}
BEGIN { printf "[" }
END { print "]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# BENCH_codec.json: the chunked-codec micro-benchmarks (encode/decode of one
# large product through the v2 frame, per codec and worker count, against
# the unframed v1 baseline) plus the ranged-read cases re-used from the run
# above — the end-to-end numbers the codec path is accountable for.
CODEC_OUT="BENCH_codec.json"
CODEC_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$CODEC_RAW"' EXIT

go test -run '^$' -bench 'BenchmarkChunked|BenchmarkV1Decode|BenchmarkZFP2DDecode' \
	-benchtime "$BENCHTIME" -benchmem ./internal/compress | tee "$CODEC_RAW"

{
	printf '{"codec":'
	awk '
	/^Benchmark(Chunked|V1Decode|ZFP2DDecode)/ {
		name = $1
		ns = ""; mbs = ""; bytes = ""; allocs = ""
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op") ns = $(i-1)
			if ($(i) == "MB/s") mbs = $(i-1)
			if ($(i) == "B/op") bytes = $(i-1)
			if ($(i) == "allocs/op") allocs = $(i-1)
		}
		printf "%s{\"name\":\"%s\",\"ns_per_op\":%s,\"mb_per_s\":%s,\"alloc_bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, ns, mbs == "" ? "null" : mbs, bytes, allocs
		sep = ",\n  "
	}
	BEGIN { printf "[" }
	END { printf "]" }
	' "$CODEC_RAW"
	printf ',\n "ranged_read":'
	cat "$OUT"
	printf '}\n'
} > "$CODEC_OUT"

echo "wrote $CODEC_OUT"

go run ./cmd/canopus-bench -obs-json BENCH_obs.json -scale quick

# BENCH_tolerance.json: RetrieveToTolerance sweep across every recorded
# per-level error bound plus midpoints; the run itself fails if any sweep
# point misses its requested eps (see DESIGN.md §11 "Retrieval planning").
go run ./cmd/canopus-bench -tolerance-sweep BENCH_tolerance.json -scale quick

# BENCH_placement.json: static LRU vs workload-adaptive placement on a
# Zipfian trace with the fast tier sized to 10% of the working set; the run
# fails unless the best adaptive policy's fast-tier hit rate beats static
# by >= 1.5x (see DESIGN.md §12 "Placement policy").
go run ./cmd/canopus-bench -placement-bench BENCH_placement.json -scale quick

# BENCH_serve.json: the multi-tenant serving load bench — ~1200 concurrent
# in-process clients against the sharded HTTP front end; the run fails
# unless uncapped tenants see zero failures, the capped tenant is throttled
# with well-formed 429s, and p99 latency is under target (see DESIGN.md
# §15 "Serving Canopus").
go run ./cmd/canopus-bench -serve-bench BENCH_serve.json -scale quick
